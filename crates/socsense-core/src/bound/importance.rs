//! Importance-sampling baseline for the approximate bound.
//!
//! Before settling on MCMC, the paper surveys marginal-approximation
//! choices (its refs [2], [3]). The natural non-Markovian baseline is
//! self-normalised importance sampling from the *independent* proposal
//! `q(s) = Π_i marginal(s_i)` — each source's claim drawn from its own
//! mixture marginal `z·p1_i + (1-z)·p0_i`, ignoring the correlation the
//! latent truth induces. Weights `w = P(s)/q(s)` correct the mismatch.
//!
//! The estimator is consistent but its weight variance grows with the
//! strength of the inter-source correlation, which is exactly what the
//! Gibbs chain sidesteps; the `ablation-gibbs` comparisons quantify the
//! difference. Exposed as [`importance_bound`] for benchmarking and as a
//! cross-check of the Gibbs implementation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use socsense_matrix::logprob::{log_sum_exp2, safe_ln, safe_ln_1m};

use crate::bound::BoundResult;
use crate::error::SenseError;

/// Configuration for [`importance_bound`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceConfig {
    /// Number of proposal draws.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImportanceConfig {
    fn default() -> Self {
        Self {
            samples: 4000,
            seed: 0,
        }
    }
}

/// Outcome of one [`importance_bound`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceOutcome {
    /// Approximate bound with FP/FN split.
    pub result: BoundResult,
    /// Draws used.
    pub samples: usize,
    /// Effective sample size `(Σw)² / Σw²` — a diagnostic for proposal
    /// quality; values far below `samples` signal weight degeneracy.
    pub effective_sample_size: f64,
}

/// Approximates the Bayes-risk bound by self-normalised importance
/// sampling from the independent per-source proposal.
///
/// Inputs are as in [`crate::bound::exact_bound`].
///
/// # Errors
///
/// * [`SenseError::EmptyData`] — no sources.
/// * [`SenseError::InvalidProbability`] — an input outside `[0, 1]`.
/// * [`SenseError::BadConfig`] — zero samples.
///
/// # Example
///
/// ```
/// use socsense_core::bound::{importance_bound, ImportanceConfig};
/// use socsense_core::exact_bound;
///
/// let probs = vec![(0.8, 0.3), (0.6, 0.2), (0.7, 0.4)];
/// let exact = exact_bound(&probs, 0.5)?;
/// let approx = importance_bound(&probs, 0.5, &ImportanceConfig::default())?;
/// assert!((approx.result.error - exact.error).abs() < 0.05);
/// # Ok::<(), socsense_core::SenseError>(())
/// ```
pub fn importance_bound(
    probs: &[(f64, f64)],
    z: f64,
    config: &ImportanceConfig,
) -> Result<ImportanceOutcome, SenseError> {
    let n = probs.len();
    if n == 0 {
        return Err(SenseError::EmptyData);
    }
    if !(0.0..=1.0).contains(&z) || !z.is_finite() {
        return Err(SenseError::InvalidProbability {
            name: "z",
            value: z,
        });
    }
    for &(p1, p0) in probs {
        for (name, v) in [("p1", p1), ("p0", p0)] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(SenseError::InvalidProbability { name, value: v });
            }
        }
    }
    if config.samples == 0 {
        return Err(SenseError::BadConfig {
            what: "samples must be positive",
        });
    }

    // Per-source log tables and proposal marginals.
    let ln_z = safe_ln(z);
    let ln_1z = safe_ln_1m(z);
    let marginals: Vec<f64> = probs
        .iter()
        .map(|&(p1, p0)| (z * p1 + (1.0 - z) * p0).clamp(1e-12, 1.0 - 1e-12))
        .collect();
    let ln_q: Vec<[f64; 2]> = marginals
        .iter()
        .map(|&q| [safe_ln(q), safe_ln_1m(q)])
        .collect();
    let ln_p1: Vec<[f64; 2]> = probs
        .iter()
        .map(|&(p1, _)| [safe_ln(p1), safe_ln_1m(p1)])
        .collect();
    let ln_p0: Vec<[f64; 2]> = probs
        .iter()
        .map(|&(_, p0)| [safe_ln(p0), safe_ln_1m(p0)])
        .collect();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let (mut w_sum, mut w2_sum) = (0.0f64, 0.0f64);
    let (mut fp_sum, mut fn_sum) = (0.0f64, 0.0f64);
    for _ in 0..config.samples {
        let (mut lq, mut l1, mut l0) = (0.0f64, 0.0f64, 0.0f64);
        for i in 0..n {
            let claim = rng.gen_bool(marginals[i]);
            let idx = usize::from(!claim);
            lq += ln_q[i][idx];
            l1 += ln_p1[i][idx];
            l0 += ln_p0[i][idx];
        }
        let ln_j1 = ln_z + l1;
        let ln_j0 = ln_1z + l0;
        let ln_p = log_sum_exp2(ln_j1, ln_j0);
        let w = (ln_p - lq).exp();
        w_sum += w;
        w2_sum += w * w;
        // min/P(s) contribution, routed to FP or FN by the decision.
        if ln_j1 > ln_j0 {
            fp_sum += w * (ln_j0 - ln_p).exp();
        } else {
            fn_sum += w * (ln_j1 - ln_p).exp();
        }
    }
    let norm = w_sum.max(1e-300);
    let result = BoundResult {
        error: (fp_sum + fn_sum) / norm,
        false_positive: fp_sum / norm,
        false_negative: fn_sum / norm,
    };
    Ok(ImportanceOutcome {
        result,
        samples: config.samples,
        effective_sample_size: if w2_sum > 0.0 {
            w_sum * w_sum / w2_sum
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::exact::exact_bound;

    #[test]
    #[cfg_attr(miri, ignore = "sampling sweep is too slow under Miri")]
    fn tracks_exact_on_small_problems() {
        let probs = vec![(0.75, 0.30), (0.55, 0.25), (0.65, 0.45), (0.80, 0.20)];
        let exact = exact_bound(&probs, 0.6).unwrap();
        let cfg = ImportanceConfig {
            samples: 30_000,
            seed: 5,
        };
        let approx = importance_bound(&probs, 0.6, &cfg).unwrap();
        assert!(
            (approx.result.error - exact.error).abs() < 0.01,
            "IS {} vs exact {}",
            approx.result.error,
            exact.error
        );
        assert!((approx.result.false_positive - exact.false_positive).abs() < 0.02);
    }

    #[test]
    #[cfg_attr(miri, ignore = "sampling sweep is too slow under Miri")]
    fn effective_sample_size_degrades_with_correlation() {
        // Strongly informative sources couple the pattern distribution to
        // the hidden truth; the independent proposal then mismatches P
        // and ESS per draw drops.
        let weak = vec![(0.52, 0.48); 12];
        let strong = vec![(0.95, 0.05); 12];
        let cfg = ImportanceConfig {
            samples: 5000,
            seed: 3,
        };
        let ess_weak = importance_bound(&weak, 0.5, &cfg)
            .unwrap()
            .effective_sample_size;
        let ess_strong = importance_bound(&strong, 0.5, &cfg)
            .unwrap()
            .effective_sample_size;
        assert!(
            ess_weak > ess_strong,
            "weak {ess_weak:.0} should beat strong {ess_strong:.0}"
        );
        assert!(
            ess_weak > 0.8 * 5000.0,
            "near-uniform case should be efficient"
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "sampling sweep is too slow under Miri")]
    fn deterministic_per_seed_and_validates() {
        let probs = vec![(0.6, 0.3); 5];
        let cfg = ImportanceConfig::default();
        let a = importance_bound(&probs, 0.5, &cfg).unwrap();
        let b = importance_bound(&probs, 0.5, &cfg).unwrap();
        assert_eq!(a.result, b.result);
        assert!(importance_bound(&[], 0.5, &cfg).is_err());
        assert!(importance_bound(&probs, 1.2, &cfg).is_err());
        let bad = ImportanceConfig {
            samples: 0,
            ..ImportanceConfig::default()
        };
        assert!(matches!(
            importance_bound(&probs, 0.5, &bad),
            Err(SenseError::BadConfig { .. })
        ));
    }

    #[test]
    #[cfg_attr(miri, ignore = "sampling sweep is too slow under Miri")]
    fn split_sums_to_total() {
        let probs = vec![(0.7, 0.2), (0.4, 0.6), (0.55, 0.5)];
        let out = importance_bound(&probs, 0.4, &ImportanceConfig::default()).unwrap();
        let r = out.result;
        assert!((r.false_positive + r.false_negative - r.error).abs() < 1e-12);
    }
}
