//! Exact evaluation of the Bayes-risk bound (Eq. 3).
//!
//! The sum ranges over all `2^n` claim patterns, but the optimal detector
//! partitions pattern space into a *true* region and a *false* region, and
//! within either region the error mass telescopes: over any subtree of
//! patterns sharing a prefix, `Σ_rest P(rest | C) = 1`. The enumerator
//! therefore walks patterns depth-first and prunes a whole subtree as soon
//! as precomputed suffix odds bounds prove every leaf below decides the
//! same way — typically reducing the visited nodes by orders of magnitude
//! while returning the mathematically exact value.

use socsense_matrix::parallel::{par_map_collect, Parallelism};

use crate::bound::BoundResult;
use crate::error::SenseError;

/// Hard cap on the exact enumeration: beyond this the walk is intractable
/// even with pruning, and [`crate::bound::gibbs_bound`] should be used.
pub const MAX_EXACT_SOURCES: usize = 30;

const P_MARGIN: f64 = 1e-12;

/// Below this source count [`exact_bound_with`] skips the prefix split:
/// the subtrees are too small for the thread fan-out to pay off.
const PAR_MIN_SOURCES: usize = 12;

/// Prefix depth of the parallel split: the first `PREFIX_BITS` sources'
/// claim values are enumerated up front, yielding `2^PREFIX_BITS`
/// independent subtrees.
const PREFIX_BITS: usize = 6;

/// Computes the exact Bayes-risk bound for one assertion.
///
/// `probs[i] = (p1_i, p0_i)` are source `i`'s claim probabilities under
/// `C = 1` and `C = 0` — `(a_i, b_i)` for an independent cell, `(f_i,
/// g_i)` for a dependent one. `z` is the prior `P(C = 1)`.
///
/// Probabilities are clamped to `[1e-12, 1-1e-12]` so the suffix odds used
/// for pruning stay finite.
///
/// # Errors
///
/// * [`SenseError::EmptyData`] — `probs` is empty.
/// * [`SenseError::TooManySources`] — more than [`MAX_EXACT_SOURCES`].
/// * [`SenseError::InvalidProbability`] — any input outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use socsense_core::exact_bound;
///
/// // One perfectly silent-on-false source: claims resolve everything.
/// let b = exact_bound(&[(1.0, 0.0)], 0.5)?;
/// assert!(b.error < 1e-9);
/// # Ok::<(), socsense_core::SenseError>(())
/// ```
pub fn exact_bound(probs: &[(f64, f64)], z: f64) -> Result<BoundResult, SenseError> {
    let prep = Prepared::new(probs, z)?;
    let mut acc = Accumulator::default();
    dfs(
        &prep.clamped,
        z,
        0,
        1.0,
        1.0,
        &prep.min_ratio,
        &prep.max_ratio,
        &mut acc,
    );
    Ok(BoundResult {
        error: acc.fp + acc.fn_,
        false_positive: acc.fp,
        false_negative: acc.fn_,
    })
}

/// [`exact_bound`] with an explicit [`Parallelism`] level.
///
/// Past `PAR_MIN_SOURCES` (12) sources the enumeration splits into
/// `2^PREFIX_BITS` subtrees — one per claim pattern of the first
/// `PREFIX_BITS` (6) sources — evaluated independently and merged in
/// fixed prefix order, so every level returns bit-identical results.
/// The split forgoes pruning above the prefix depth, which can make the
/// last few ulps differ from the plain [`exact_bound`] walk (the values
/// are mathematically equal); small inputs skip the split and match
/// [`exact_bound`] exactly.
///
/// # Errors
///
/// See [`exact_bound`].
pub fn exact_bound_with(
    probs: &[(f64, f64)],
    z: f64,
    par: Parallelism,
) -> Result<BoundResult, SenseError> {
    let n = probs.len();
    if n < PAR_MIN_SOURCES {
        return exact_bound(probs, z);
    }
    let prep = Prepared::new(probs, z)?;
    let k = PREFIX_BITS;
    // Bit t of a prefix index is source t's claim value; the weights of
    // the prefix multiply in source order, identically for every level.
    let parts: Vec<(f64, f64)> = par_map_collect(par, 1usize << k, |prefix| {
        let mut q1 = 1.0;
        let mut q0 = 1.0;
        for (t, &(p1, p0)) in prep.clamped.iter().enumerate().take(k) {
            if prefix >> t & 1 == 1 {
                q1 *= p1;
                q0 *= p0;
            } else {
                q1 *= 1.0 - p1;
                q0 *= 1.0 - p0;
            }
        }
        let mut acc = Accumulator::default();
        dfs(
            &prep.clamped,
            z,
            k,
            q1,
            q0,
            &prep.min_ratio,
            &prep.max_ratio,
            &mut acc,
        );
        (acc.fp, acc.fn_)
    });
    // Merge in prefix order (non-associative float sums).
    let (mut fp, mut fn_) = (0.0, 0.0);
    for (p_fp, p_fn) in parts {
        fp += p_fp;
        fn_ += p_fn;
    }
    Ok(BoundResult {
        error: fp + fn_,
        false_positive: fp,
        false_negative: fn_,
    })
}

/// Validated, clamped inputs plus the suffix odds bounds the pruned walk
/// needs: for patterns over sources `k..n`, the likelihood ratio
/// `rest1/rest0` lies within `[min_ratio[k], max_ratio[k]]`.
struct Prepared {
    clamped: Vec<(f64, f64)>,
    min_ratio: Vec<f64>,
    max_ratio: Vec<f64>,
}

impl Prepared {
    fn new(probs: &[(f64, f64)], z: f64) -> Result<Self, SenseError> {
        let n = probs.len();
        if n == 0 {
            return Err(SenseError::EmptyData);
        }
        if n > MAX_EXACT_SOURCES {
            return Err(SenseError::TooManySources {
                n,
                max: MAX_EXACT_SOURCES,
            });
        }
        validate(probs, z)?;

        let clamped: Vec<(f64, f64)> = probs
            .iter()
            .map(|&(p1, p0)| {
                (
                    p1.clamp(P_MARGIN, 1.0 - P_MARGIN),
                    p0.clamp(P_MARGIN, 1.0 - P_MARGIN),
                )
            })
            .collect();

        let mut min_ratio = vec![1.0f64; n + 1];
        let mut max_ratio = vec![1.0f64; n + 1];
        for k in (0..n).rev() {
            let (p1, p0) = clamped[k];
            let claim = p1 / p0;
            let silent = (1.0 - p1) / (1.0 - p0);
            min_ratio[k] = min_ratio[k + 1] * claim.min(silent);
            max_ratio[k] = max_ratio[k + 1] * claim.max(silent);
        }
        Ok(Self {
            clamped,
            min_ratio,
            max_ratio,
        })
    }
}

#[derive(Default)]
struct Accumulator {
    fp: f64,
    fn_: f64,
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    probs: &[(f64, f64)],
    z: f64,
    k: usize,
    q1: f64,
    q0: f64,
    min_ratio: &[f64],
    max_ratio: &[f64],
    acc: &mut Accumulator,
) {
    let w1 = z * q1;
    let w0 = (1.0 - z) * q0;
    // Whole subtree decides "true" (every leaf has w1·rest1 > w0·rest0):
    // the error mass is Σ w0·rest0 = w0.
    if w1 * min_ratio[k] > w0 {
        acc.fp += w0;
        return;
    }
    // Whole subtree decides "false": error mass Σ w1·rest1 = w1.
    if w1 * max_ratio[k] <= w0 {
        acc.fn_ += w1;
        return;
    }
    debug_assert!(k < probs.len(), "leaf must have been decided by the bounds");
    let (p1, p0) = probs[k];
    dfs(probs, z, k + 1, q1 * p1, q0 * p0, min_ratio, max_ratio, acc);
    dfs(
        probs,
        z,
        k + 1,
        q1 * (1.0 - p1),
        q0 * (1.0 - p0),
        min_ratio,
        max_ratio,
        acc,
    );
}

/// Unpruned reference enumeration; used by tests to validate the pruned
/// walk. Limited to small `n` by construction.
#[cfg(test)]
pub(crate) fn exact_bound_naive(probs: &[(f64, f64)], z: f64) -> BoundResult {
    let n = probs.len();
    assert!(n <= 20);
    let mut fp = 0.0;
    let mut fn_ = 0.0;
    for pattern in 0u32..(1 << n) {
        let mut p1 = z;
        let mut p0 = 1.0 - z;
        for (i, &(a, b)) in probs.iter().enumerate() {
            if pattern >> i & 1 == 1 {
                p1 *= a;
                p0 *= b;
            } else {
                p1 *= 1.0 - a;
                p0 *= 1.0 - b;
            }
        }
        if p1 > p0 {
            fp += p0;
        } else {
            fn_ += p1;
        }
    }
    BoundResult {
        error: fp + fn_,
        false_positive: fp,
        false_negative: fn_,
    }
}

/// Evaluates Eq. 3 from *explicit* joint pattern tables, as in the paper's
/// Table I walk-through: `p1[s] = P(SC_j = s | C_j = 1)` and `p0[s] =
/// P(SC_j = s | C_j = 0)` for every pattern `s`.
///
/// Unlike [`exact_bound`], this makes no factorisation assumption, so it
/// accepts tables with arbitrary inter-source correlation.
///
/// # Errors
///
/// * [`SenseError::DimensionMismatch`] — the two tables differ in length.
/// * [`SenseError::EmptyData`] — the tables are empty.
/// * [`SenseError::InvalidProbability`] — `z ∉ [0, 1]`.
pub fn exact_bound_from_table(p1: &[f64], p0: &[f64], z: f64) -> Result<BoundResult, SenseError> {
    if p1.len() != p0.len() {
        return Err(SenseError::DimensionMismatch {
            what: "pattern table length",
            expected: p1.len(),
            actual: p0.len(),
        });
    }
    if p1.is_empty() {
        return Err(SenseError::EmptyData);
    }
    if !(0.0..=1.0).contains(&z) || !z.is_finite() {
        return Err(SenseError::InvalidProbability {
            name: "z",
            value: z,
        });
    }
    let mut fp = 0.0;
    let mut fn_ = 0.0;
    for (&a, &b) in p1.iter().zip(p0) {
        let w1 = z * a;
        let w0 = (1.0 - z) * b;
        if w1 > w0 {
            fp += w0;
        } else {
            fn_ += w1;
        }
    }
    Ok(BoundResult {
        error: fp + fn_,
        false_positive: fp,
        false_negative: fn_,
    })
}

fn validate(probs: &[(f64, f64)], z: f64) -> Result<(), SenseError> {
    if !(0.0..=1.0).contains(&z) || !z.is_finite() {
        return Err(SenseError::InvalidProbability {
            name: "z",
            value: z,
        });
    }
    for &(p1, p0) in probs {
        if !(0.0..=1.0).contains(&p1) || !p1.is_finite() {
            return Err(SenseError::InvalidProbability {
                name: "p1",
                value: p1,
            });
        }
        if !(0.0..=1.0).contains(&p0) || !p0.is_finite() {
            return Err(SenseError::InvalidProbability {
                name: "p0",
                value: p0,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The paper's Table I, columns `P(SC_j|C_j=1)` and `P(SC_j|C_j=0)`
    /// in pattern order 000, 001, 010, 011, 100, 101, 110, 111.
    const TABLE_I_P1: [f64; 8] = [
        0.18546216, 0.17606773, 0.00033244, 0.01971855, 0.24427898, 0.19063986, 0.02321803,
        0.16028224,
    ];
    const TABLE_I_P0: [f64; 8] = [
        0.05851677, 0.05300123, 0.12803859, 0.16032756, 0.14231588, 0.08222352, 0.18716734,
        0.18840910,
    ];

    #[test]
    fn reproduces_paper_table_i_walkthrough() {
        let b = exact_bound_from_table(&TABLE_I_P1, &TABLE_I_P0, 0.5).unwrap();
        // The paper: Err = 0.26980433.
        assert!(
            (b.error - 0.26980433).abs() < 1e-8,
            "got {:.8}, paper says 0.26980433",
            b.error
        );
        assert!((b.false_positive + b.false_negative - b.error).abs() < 1e-12);
    }

    #[test]
    #[cfg_attr(miri, ignore = "exponential enumeration is too slow under Miri")]
    fn pruned_matches_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..50 {
            let n = rng.gen_range(1..=10);
            let probs: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.01..0.99), rng.gen_range(0.01..0.99)))
                .collect();
            let z = rng.gen_range(0.05..0.95);
            let pruned = exact_bound(&probs, z).unwrap();
            let naive = exact_bound_naive(&probs, z);
            assert!(
                (pruned.error - naive.error).abs() < 1e-10,
                "trial {trial}: pruned {} vs naive {}",
                pruned.error,
                naive.error
            );
            assert!((pruned.false_positive - naive.false_positive).abs() < 1e-10);
            assert!((pruned.false_negative - naive.false_negative).abs() < 1e-10);
        }
    }

    #[test]
    fn bound_is_at_most_min_prior() {
        // Guessing the prior blindly errs with min(z, 1-z); data only helps.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let n = rng.gen_range(1..=8);
            let probs: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.01..0.99), rng.gen_range(0.01..0.99)))
                .collect();
            let z = rng.gen_range(0.05..0.95);
            let b = exact_bound(&probs, z).unwrap();
            assert!(b.error <= z.min(1.0 - z) + 1e-12);
            assert!(b.error >= 0.0);
        }
    }

    #[test]
    fn uninformative_sources_hit_the_prior() {
        // p1 == p0 for everyone: claims carry no information, so the
        // optimal detector guesses the prior and errs with min(z, 1-z).
        let probs = vec![(0.4, 0.4); 6];
        let b = exact_bound(&probs, 0.3).unwrap();
        assert!((b.error - 0.3).abs() < 1e-9);
        // All error is false negatives (everything is labelled false).
        assert!(b.false_positive < 1e-9);
    }

    #[test]
    fn perfect_sources_drive_error_to_zero() {
        let probs = vec![(0.999999, 0.000001); 5];
        let b = exact_bound(&probs, 0.5).unwrap();
        assert!(b.error < 1e-4);
    }

    #[test]
    fn degenerate_priors_have_zero_error() {
        let probs = vec![(0.7, 0.3); 4];
        assert!(exact_bound(&probs, 0.0).unwrap().error < 1e-12);
        assert!(exact_bound(&probs, 1.0).unwrap().error < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(exact_bound(&[], 0.5), Err(SenseError::EmptyData)));
        assert!(matches!(
            exact_bound(&[(0.5, 0.5)], 1.5),
            Err(SenseError::InvalidProbability { .. })
        ));
        assert!(matches!(
            exact_bound(&[(1.5, 0.5)], 0.5),
            Err(SenseError::InvalidProbability { .. })
        ));
        let too_many = vec![(0.5, 0.5); MAX_EXACT_SOURCES + 1];
        assert!(matches!(
            exact_bound(&too_many, 0.5),
            Err(SenseError::TooManySources { .. })
        ));
    }

    #[test]
    fn table_function_rejects_mismatched_tables() {
        assert!(exact_bound_from_table(&[0.5], &[0.2, 0.3], 0.5).is_err());
        assert!(exact_bound_from_table(&[], &[], 0.5).is_err());
    }

    #[test]
    fn more_informative_sources_tighten_the_bound() {
        let weak = exact_bound(&[(0.55, 0.45); 8], 0.5).unwrap();
        let strong = exact_bound(&[(0.9, 0.1); 8], 0.5).unwrap();
        assert!(strong.error < weak.error);
    }

    #[test]
    #[cfg_attr(miri, ignore = "exponential enumeration is too slow under Miri")]
    fn prefix_split_is_bit_identical_across_levels_and_tracks_plain_walk() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in [PAR_MIN_SOURCES, 15, 20] {
            let probs: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.05..0.95), rng.gen_range(0.05..0.95)))
                .collect();
            let z = rng.gen_range(0.1..0.9);
            let serial = exact_bound_with(&probs, z, Parallelism::Serial).unwrap();
            for par in [
                Parallelism::Auto,
                Parallelism::Threads(2),
                Parallelism::Threads(4),
            ] {
                let threaded = exact_bound_with(&probs, z, par).unwrap();
                assert_eq!(serial.error.to_bits(), threaded.error.to_bits(), "n={n}");
                assert_eq!(
                    serial.false_positive.to_bits(),
                    threaded.false_positive.to_bits()
                );
                assert_eq!(
                    serial.false_negative.to_bits(),
                    threaded.false_negative.to_bits()
                );
            }
            // Mathematically equal to the plain pruned walk.
            let plain = exact_bound(&probs, z).unwrap();
            assert!((serial.error - plain.error).abs() < 1e-12);
            assert!((serial.false_positive - plain.false_positive).abs() < 1e-12);
        }
    }

    #[test]
    fn small_inputs_skip_the_split_and_match_exactly() {
        let probs = vec![(0.7, 0.3); PAR_MIN_SOURCES - 1];
        let plain = exact_bound(&probs, 0.55).unwrap();
        let split = exact_bound_with(&probs, 0.55, Parallelism::Threads(4)).unwrap();
        assert_eq!(plain.error.to_bits(), split.error.to_bits());
    }

    #[test]
    #[cfg_attr(miri, ignore = "exponential enumeration is too slow under Miri")]
    fn pruning_handles_25_sources_quickly() {
        // 2^25 leaves unpruned; with informative sources this must finish
        // near-instantly because almost every subtree decides early.
        let probs: Vec<(f64, f64)> = (0..25)
            .map(|i| (0.6 + 0.01 * (i % 10) as f64, 0.4 - 0.01 * (i % 10) as f64))
            .collect();
        let b = exact_bound(&probs, 0.6).unwrap();
        assert!(b.error > 0.0 && b.error < 0.4);
    }
}
