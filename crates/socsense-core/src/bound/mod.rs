//! Fundamental error bounds on assertion misclassification (Sec. III).
//!
//! The bound is the Bayes risk of the *optimal* detector for one
//! assertion: knowing `θ` and the assertion's dependency column exactly,
//! no estimator can average a lower error than
//!
//! ```text
//! E^opt(error) = Σ_{sc ∈ {0,1}^n} min( z·P(sc|C=1),  (1-z)·P(sc|C=0) )     (Eq. 3)
//! ```
//!
//! [`exact_bound`] evaluates the sum exactly with a decision-pruned
//! depth-first enumeration; [`gibbs_bound`] approximates it by Gibbs
//! sampling (Algorithm 1). Both report the split into *false-positive*
//! mass (false assertions the optimal detector would label true) and
//! *false-negative* mass, which the paper plots in Figs. 3–5 and 7–10.

mod exact;
mod gibbs;
mod importance;
mod mismatch;

use serde::{Deserialize, Serialize};

use socsense_matrix::parallel::{par_map_collect, Parallelism};
use socsense_obs::Obs;

pub use exact::{exact_bound, exact_bound_from_table, exact_bound_with, MAX_EXACT_SOURCES};
pub use gibbs::{gibbs_bound, GibbsConfig, GibbsEstimator, GibbsOutcome};
pub use importance::{importance_bound, ImportanceConfig, ImportanceOutcome};
pub use mismatch::mismatched_decision_error;

use crate::data::ClaimData;
use crate::error::SenseError;
use crate::model::Theta;

/// A Bayes-risk bound with its false-positive / false-negative split.
///
/// Invariant: `error = false_positive + false_negative` (up to floating
/// point rounding).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BoundResult {
    /// Total expected misclassification probability.
    pub error: f64,
    /// Portion from labelling false assertions true.
    pub false_positive: f64,
    /// Portion from labelling true assertions false.
    pub false_negative: f64,
}

impl BoundResult {
    /// The paper's "Optimal" accuracy curve: `1 - error`.
    pub fn optimal_accuracy(&self) -> f64 {
        1.0 - self.error
    }

    fn mean_of(results: &[BoundResult]) -> BoundResult {
        let k = results.len().max(1) as f64;
        BoundResult {
            error: results.iter().map(|r| r.error).sum::<f64>() / k,
            false_positive: results.iter().map(|r| r.false_positive).sum::<f64>() / k,
            false_negative: results.iter().map(|r| r.false_negative).sum::<f64>() / k,
        }
    }
}

/// How [`bound_for_data`] evaluates each per-assertion bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoundMethod {
    /// Exact enumeration (Eq. 3); errors out beyond
    /// [`MAX_EXACT_SOURCES`] sources.
    Exact,
    /// Gibbs-sampling approximation (Algorithm 1).
    Gibbs(GibbsConfig),
    /// Exact up to `exact_max_sources`, Gibbs beyond.
    Auto {
        /// Largest `n` still enumerated exactly.
        exact_max_sources: usize,
        /// Sampler settings used past that point.
        gibbs: GibbsConfig,
    },
}

impl Default for BoundMethod {
    fn default() -> Self {
        BoundMethod::Auto {
            exact_max_sources: 20,
            gibbs: GibbsConfig::default(),
        }
    }
}

/// Per-source claim probabilities `(P(claim | C=1), P(claim | C=0))` for
/// assertion `j`: `(a_i, b_i)` on independent cells, `(f_i, g_i)` on
/// dependent ones.
pub(crate) fn assertion_probs(data: &ClaimData, theta: &Theta, j: u32) -> Vec<(f64, f64)> {
    let mut probs: Vec<(f64, f64)> = theta.sources().iter().map(|s| (s.a, s.b)).collect();
    for &i in data.d().col(j) {
        let s = theta.source(i as usize);
        probs[i as usize] = (s.f, s.g);
    }
    probs
}

/// Mean Bayes-risk bound over a chosen subset of assertions.
///
/// Each assertion has its own dependency column and therefore its own
/// bound; the paper reports the average. Use this to subsample large
/// datasets; [`bound_for_data`] covers every assertion.
///
/// # Errors
///
/// Propagates dimension mismatches and [`SenseError::TooManySources`]
/// from the exact path; returns [`SenseError::EmptyData`] when
/// `assertions` is empty.
pub fn bound_for_assertions(
    data: &ClaimData,
    theta: &Theta,
    method: &BoundMethod,
    assertions: &[u32],
) -> Result<BoundResult, SenseError> {
    bound_for_assertions_with(data, theta, method, assertions, Parallelism::Auto)
}

/// Derives the Gibbs seed for assertion `j` from the configured base
/// seed (a SplitMix64-style mix). Every assertion then runs its own
/// independent chain, and — because the derivation depends only on
/// `(seed, j)` — the chain is the same whichever worker evaluates it.
fn per_assertion_gibbs(cfg: &GibbsConfig, j: u32) -> GibbsConfig {
    let mut x = cfg
        .seed
        .wrapping_add((j as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    GibbsConfig {
        seed: x ^ (x >> 31),
        ..*cfg
    }
}

/// [`bound_for_assertions`] with an explicit [`Parallelism`] level.
///
/// Per-assertion bounds are evaluated in fixed index chunks and averaged
/// in assertion order, so every level returns bit-identical results.
/// Gibbs chains get per-assertion seeds derived from the configured seed
/// (see [`GibbsConfig::seed`]), keeping each chain independent of which
/// worker runs it.
///
/// # Errors
///
/// See [`bound_for_assertions`].
pub fn bound_for_assertions_with(
    data: &ClaimData,
    theta: &Theta,
    method: &BoundMethod,
    assertions: &[u32],
    par: Parallelism,
) -> Result<BoundResult, SenseError> {
    bound_for_assertions_traced(data, theta, method, assertions, par, &Obs::none())
}

/// [`bound_for_assertions_with`] reporting `bound.*` metrics to `obs`:
/// evaluation wall time, assertions per method (exact vs. Gibbs), and
/// Gibbs sample counts. Per-assertion outcomes are collected first and
/// emitted serially in assertion order, so recorded totals are
/// deterministic at every [`Parallelism`] level — and the returned
/// bound is bit-identical to the untraced call.
///
/// # Errors
///
/// See [`bound_for_assertions`].
pub fn bound_for_assertions_traced(
    data: &ClaimData,
    theta: &Theta,
    method: &BoundMethod,
    assertions: &[u32],
    par: Parallelism,
    obs: &Obs,
) -> Result<BoundResult, SenseError> {
    if assertions.is_empty() {
        return Err(SenseError::EmptyData);
    }
    if data.source_count() != theta.source_count() {
        return Err(SenseError::DimensionMismatch {
            what: "theta source count vs data",
            expected: data.source_count(),
            actual: theta.source_count(),
        });
    }
    for &j in assertions {
        if j as usize >= data.assertion_count() {
            return Err(SenseError::DimensionMismatch {
                what: "assertion index vs data",
                expected: data.assertion_count(),
                actual: j as usize,
            });
        }
    }
    let n = data.source_count();
    let timer = obs.timer("bound.eval.seconds");
    // Each evaluation also reports how it ran: `None` for exact
    // enumeration, `Some((samples, converged))` for a Gibbs chain.
    type Meta = Option<(usize, bool)>;
    let per: Vec<Result<(BoundResult, Meta), SenseError>> =
        par_map_collect(par, assertions.len(), |k| {
            let j = assertions[k];
            let probs = assertion_probs(data, theta, j);
            let gibbs_at = |cfg: &GibbsConfig| {
                gibbs_bound(&probs, theta.z(), &per_assertion_gibbs(cfg, j))
                    .map(|o| (o.result, Some((o.samples, o.converged))))
            };
            match method {
                BoundMethod::Exact => exact_bound(&probs, theta.z()).map(|r| (r, None)),
                BoundMethod::Gibbs(cfg) => gibbs_at(cfg),
                BoundMethod::Auto {
                    exact_max_sources,
                    gibbs,
                } => {
                    if n <= *exact_max_sources {
                        exact_bound(&probs, theta.z()).map(|r| (r, None))
                    } else {
                        gibbs_at(gibbs)
                    }
                }
            }
        });
    // Errors surface in assertion order, matching a sequential sweep.
    let per = per.into_iter().collect::<Result<Vec<_>, _>>()?;
    if obs.enabled() {
        obs.counter("bound.assertions_total", per.len() as u64);
        for (_, meta) in &per {
            match meta {
                None => obs.counter("bound.exact_evals_total", 1),
                Some((samples, converged)) => {
                    obs.counter("bound.gibbs_evals_total", 1);
                    obs.counter("bound.gibbs.samples_total", *samples as u64);
                    obs.observe("bound.gibbs.samples", *samples as f64);
                    if *converged {
                        obs.counter("bound.gibbs.converged_total", 1);
                    }
                }
            }
        }
        timer.stop();
    }
    let per: Vec<BoundResult> = per.into_iter().map(|(r, _)| r).collect();
    Ok(BoundResult::mean_of(&per))
}

/// Mean Bayes-risk bound over *all* assertions in `data`.
///
/// # Errors
///
/// See [`bound_for_assertions`].
pub fn bound_for_data(
    data: &ClaimData,
    theta: &Theta,
    method: &BoundMethod,
) -> Result<BoundResult, SenseError> {
    bound_for_data_with(data, theta, method, Parallelism::Auto)
}

/// [`bound_for_data`] with an explicit [`Parallelism`] level (see
/// [`bound_for_assertions_with`]).
///
/// # Errors
///
/// See [`bound_for_assertions`].
pub fn bound_for_data_with(
    data: &ClaimData,
    theta: &Theta,
    method: &BoundMethod,
    par: Parallelism,
) -> Result<BoundResult, SenseError> {
    let all: Vec<u32> = (0..data.assertion_count() as u32).collect();
    bound_for_assertions_with(data, theta, method, &all, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceParams;
    use socsense_matrix::SparseBinaryMatrix;

    fn tiny() -> (ClaimData, Theta) {
        let sc = SparseBinaryMatrix::from_entries(3, 2, [(0, 0), (1, 0), (2, 1)]);
        let d = SparseBinaryMatrix::from_entries(3, 2, [(1, 0)]);
        let theta = Theta::new(
            vec![
                SourceParams::new(0.7, 0.2, 0.6, 0.3).unwrap(),
                SourceParams::new(0.6, 0.3, 0.8, 0.4).unwrap(),
                SourceParams::new(0.9, 0.1, 0.5, 0.5).unwrap(),
            ],
            0.6,
        )
        .unwrap();
        (ClaimData::new(sc, d).unwrap(), theta)
    }

    #[test]
    fn assertion_probs_respects_dependency_column() {
        let (data, theta) = tiny();
        let p0 = assertion_probs(&data, &theta, 0);
        // Source 1 is dependent on assertion 0 -> (f, g).
        assert_eq!(p0[1], (0.8, 0.4));
        assert_eq!(p0[0], (0.7, 0.2));
        let p1 = assertion_probs(&data, &theta, 1);
        assert_eq!(p1[1], (0.6, 0.3));
    }

    #[test]
    #[cfg_attr(miri, ignore = "sampling/enumeration sweep is too slow under Miri")]
    fn bound_for_data_averages_and_splits() {
        let (data, theta) = tiny();
        let r = bound_for_data(&data, &theta, &BoundMethod::Exact).unwrap();
        assert!(r.error > 0.0 && r.error < 0.5);
        assert!((r.false_positive + r.false_negative - r.error).abs() < 1e-12);
        assert!((r.optimal_accuracy() - (1.0 - r.error)).abs() < 1e-15);
    }

    #[test]
    #[cfg_attr(miri, ignore = "sampling/enumeration sweep is too slow under Miri")]
    fn auto_switches_to_gibbs_for_many_sources() {
        let (data, theta) = tiny();
        let method = BoundMethod::Auto {
            exact_max_sources: 1, // force Gibbs even here
            gibbs: GibbsConfig {
                seed: 7,
                ..GibbsConfig::default()
            },
        };
        let approx = bound_for_data(&data, &theta, &method).unwrap();
        let exact = bound_for_data(&data, &theta, &BoundMethod::Exact).unwrap();
        assert!(
            (approx.error - exact.error).abs() < 0.05,
            "gibbs {} vs exact {}",
            approx.error,
            exact.error
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "sampling/enumeration sweep is too slow under Miri")]
    fn traced_bound_matches_untraced_and_records() {
        let (data, theta) = tiny();
        let method = BoundMethod::Auto {
            exact_max_sources: 1, // force Gibbs so sample metrics flow
            gibbs: GibbsConfig::default(),
        };
        let plain = bound_for_data(&data, &theta, &method).unwrap();
        let (obs, rec) = Obs::recorder();
        let traced =
            bound_for_assertions_traced(&data, &theta, &method, &[0, 1], Parallelism::Auto, &obs)
                .unwrap();
        assert_eq!(plain.error.to_bits(), traced.error.to_bits());

        let snap = rec.snapshot();
        assert_eq!(snap.counter("bound.assertions_total"), 2);
        assert_eq!(snap.counter("bound.gibbs_evals_total"), 2);
        assert_eq!(snap.counter("bound.exact_evals_total"), 0);
        assert!(snap.counter("bound.gibbs.samples_total") > 0);
        assert_eq!(snap.histogram("bound.gibbs.samples").unwrap().count, 2);
        assert_eq!(snap.histogram("bound.eval.seconds").unwrap().count, 1);

        let (obs, rec) = Obs::recorder();
        bound_for_assertions_traced(
            &data,
            &theta,
            &BoundMethod::Exact,
            &[0],
            Parallelism::Serial,
            &obs,
        )
        .unwrap();
        assert_eq!(rec.counter_value("bound.exact_evals_total"), 1);
        assert_eq!(rec.counter_value("bound.gibbs_evals_total"), 0);
    }

    #[test]
    fn empty_assertion_list_rejected() {
        let (data, theta) = tiny();
        assert!(matches!(
            bound_for_assertions(&data, &theta, &BoundMethod::Exact, &[]),
            Err(SenseError::EmptyData)
        ));
    }

    #[test]
    fn out_of_range_assertion_rejected() {
        let (data, theta) = tiny();
        assert!(bound_for_assertions(&data, &theta, &BoundMethod::Exact, &[9]).is_err());
    }
}
