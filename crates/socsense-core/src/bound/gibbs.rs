//! Gibbs-sampling approximation of the error bound (Algorithm 1, Eq. 6).
//!
//! The sampler draws claim patterns `s ∈ {0,1}^n` from the model's
//! marginal `P(s) = z·P(s|C=1) + (1-z)·P(s|C=0)` by resampling one
//! source's claim at a time from its full conditional, maintaining the two
//! joint log-likelihoods incrementally (refreshed periodically against
//! drift).
//!
//! Two estimators turn samples into a bound estimate:
//!
//! * [`GibbsEstimator::SelfNormalized`] *(default)* — the standard
//!   self-normalized importance estimator
//!   `(1/T)·Σ_t min(w1_t, w0_t) / P(s_t)`, which is consistent for Eq. 3
//!   because patterns arrive with frequency `∝ P(s)`.
//! * [`GibbsEstimator::PaperRatio`] — Eq. 6 exactly as printed,
//!   `Σ_t min_t / Σ_t (w1_t + w0_t)`. Taken literally this converges to
//!   `E_P[min]/E_P[P]`, which is *not* Eq. 3 in general; it is provided
//!   for fidelity and so the discrepancy can be demonstrated (see
//!   `DESIGN.md` §4 and the crate tests).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use socsense_matrix::logprob::{log_sum_exp2, safe_ln, safe_ln_1m};
use socsense_matrix::FixedBitSet;

use crate::bound::BoundResult;
use crate::error::SenseError;

/// Which sample-averaging rule [`gibbs_bound`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GibbsEstimator {
    /// Consistent self-normalized importance estimator (default).
    #[default]
    SelfNormalized,
    /// The paper's Eq. 6 ratio, implemented verbatim.
    PaperRatio,
}

/// Configuration for [`gibbs_bound`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GibbsConfig {
    /// Sweeps discarded before sampling starts.
    pub burn_in: usize,
    /// Sweeps between retained samples.
    pub thin: usize,
    /// Minimum retained samples before convergence may stop the chain.
    pub min_samples: usize,
    /// Hard cap on retained samples.
    pub max_samples: usize,
    /// Convergence is checked every this many retained samples.
    pub check_every: usize,
    /// Chain stops once successive checks differ by less than this.
    pub tol: f64,
    /// RNG seed.
    pub seed: u64,
    /// Averaging rule.
    pub estimator: GibbsEstimator,
}

impl Default for GibbsConfig {
    fn default() -> Self {
        Self {
            burn_in: 100,
            thin: 2,
            min_samples: 400,
            max_samples: 20_000,
            check_every: 200,
            tol: 5e-4,
            seed: 0,
            estimator: GibbsEstimator::SelfNormalized,
        }
    }
}

/// Result of one [`gibbs_bound`] run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GibbsOutcome {
    /// Approximate bound with FP/FN split.
    pub result: BoundResult,
    /// Retained samples.
    pub samples: usize,
    /// Whether the convergence criterion (rather than `max_samples`)
    /// stopped the chain.
    pub converged: bool,
}

/// Approximates the Bayes-risk bound for one assertion by Gibbs sampling.
///
/// Inputs are as in [`crate::bound::exact_bound`]: per-source claim
/// probabilities under both hypotheses, and the prior `z`.
///
/// # Errors
///
/// * [`SenseError::EmptyData`] — no sources.
/// * [`SenseError::InvalidProbability`] — an input outside `[0, 1]`.
/// * [`SenseError::BadConfig`] — a zero `thin`, `check_every`, or
///   `max_samples`.
///
/// # Example
///
/// ```
/// use socsense_core::{exact_bound, gibbs_bound, GibbsConfig};
///
/// let probs = vec![(0.8, 0.3), (0.6, 0.2), (0.7, 0.4)];
/// let exact = exact_bound(&probs, 0.5)?;
/// let approx = gibbs_bound(&probs, 0.5, &GibbsConfig::default())?;
/// assert!((approx.result.error - exact.error).abs() < 0.03);
/// # Ok::<(), socsense_core::SenseError>(())
/// ```
pub fn gibbs_bound(
    probs: &[(f64, f64)],
    z: f64,
    config: &GibbsConfig,
) -> Result<GibbsOutcome, SenseError> {
    let n = probs.len();
    if n == 0 {
        return Err(SenseError::EmptyData);
    }
    if !(0.0..=1.0).contains(&z) || !z.is_finite() {
        return Err(SenseError::InvalidProbability {
            name: "z",
            value: z,
        });
    }
    for &(p1, p0) in probs {
        for (name, v) in [("p1", p1), ("p0", p0)] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(SenseError::InvalidProbability { name, value: v });
            }
        }
    }
    if config.thin == 0 || config.check_every == 0 || config.max_samples == 0 {
        return Err(SenseError::BadConfig {
            what: "thin, check_every, and max_samples must be positive",
        });
    }

    let mut chain = Chain::new(probs, z, config.seed);
    for _ in 0..config.burn_in {
        chain.sweep();
    }

    let mut acc = match config.estimator {
        GibbsEstimator::SelfNormalized => EstimatorState::SelfNormalized {
            fp_sum: 0.0,
            fn_sum: 0.0,
        },
        GibbsEstimator::PaperRatio => EstimatorState::PaperRatio {
            ln_fp: f64::NEG_INFINITY,
            ln_fn: f64::NEG_INFINITY,
            ln_total: f64::NEG_INFINITY,
        },
    };

    let mut samples = 0usize;
    let mut last_estimate = f64::NAN;
    let mut converged = false;
    while samples < config.max_samples {
        for _ in 0..config.thin {
            chain.sweep();
        }
        acc.absorb(chain.ln_joint1(), chain.ln_joint0());
        samples += 1;
        if samples.is_multiple_of(config.check_every) {
            let est = acc.result(samples).error;
            if samples >= config.min_samples && (est - last_estimate).abs() < config.tol {
                converged = true;
                break;
            }
            last_estimate = est;
        }
    }

    Ok(GibbsOutcome {
        result: acc.result(samples),
        samples,
        converged,
    })
}

/// The Markov chain over claim patterns.
struct Chain {
    n: usize,
    ln_z: f64,
    ln_1z: f64,
    /// `[ln p, ln(1-p)]` per source under C=1 / C=0.
    ln_p1: Vec<[f64; 2]>,
    ln_p0: Vec<[f64; 2]>,
    state: FixedBitSet,
    ln_prod1: f64,
    ln_prod0: f64,
    rng: StdRng,
    sweeps: usize,
}

impl Chain {
    fn new(probs: &[(f64, f64)], z: f64, seed: u64) -> Self {
        let n = probs.len();
        let ln_p1: Vec<[f64; 2]> = probs
            .iter()
            .map(|&(p1, _)| [safe_ln(p1), safe_ln_1m(p1)])
            .collect();
        let ln_p0: Vec<[f64; 2]> = probs
            .iter()
            .map(|&(_, p0)| [safe_ln(p0), safe_ln_1m(p0)])
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = FixedBitSet::new(n);
        for (i, &(p1, p0)) in probs.iter().enumerate() {
            let marginal = z * p1 + (1.0 - z) * p0;
            state.set(i, rng.gen_bool(marginal.clamp(0.0, 1.0)));
        }
        let mut chain = Self {
            n,
            ln_z: safe_ln(z),
            ln_1z: safe_ln_1m(z),
            ln_p1,
            ln_p0,
            state,
            ln_prod1: 0.0,
            ln_prod0: 0.0,
            rng,
            sweeps: 0,
        };
        chain.refresh_products();
        chain
    }

    fn refresh_products(&mut self) {
        self.ln_prod1 = 0.0;
        self.ln_prod0 = 0.0;
        for i in 0..self.n {
            let idx = usize::from(!self.state.get(i));
            self.ln_prod1 += self.ln_p1[i][idx];
            self.ln_prod0 += self.ln_p0[i][idx];
        }
    }

    /// One full-conditional resampling pass over all sources.
    fn sweep(&mut self) {
        for i in 0..self.n {
            let cur = usize::from(!self.state.get(i));
            let rest1 = self.ln_prod1 - self.ln_p1[i][cur];
            let rest0 = self.ln_prod0 - self.ln_p0[i][cur];
            // Joint weights of (s_i = 1, rest) and (s_i = 0, rest).
            let ln_w1 = log_sum_exp2(
                self.ln_z + rest1 + self.ln_p1[i][0],
                self.ln_1z + rest0 + self.ln_p0[i][0],
            );
            let ln_w0 = log_sum_exp2(
                self.ln_z + rest1 + self.ln_p1[i][1],
                self.ln_1z + rest0 + self.ln_p0[i][1],
            );
            let p_claim = (ln_w1 - log_sum_exp2(ln_w1, ln_w0)).exp();
            let claim = self.rng.gen_bool(p_claim.clamp(0.0, 1.0));
            self.state.set(i, claim);
            let idx = usize::from(!claim);
            self.ln_prod1 = rest1 + self.ln_p1[i][idx];
            self.ln_prod0 = rest0 + self.ln_p0[i][idx];
        }
        self.sweeps += 1;
        // Periodic full recomputation bounds floating-point drift.
        if self.sweeps.is_multiple_of(64) {
            self.refresh_products();
        }
    }

    /// `ln( z · P(s | C=1) )` of the current state.
    fn ln_joint1(&self) -> f64 {
        self.ln_z + self.ln_prod1
    }

    /// `ln( (1-z) · P(s | C=0) )` of the current state.
    fn ln_joint0(&self) -> f64 {
        self.ln_1z + self.ln_prod0
    }
}

enum EstimatorState {
    SelfNormalized {
        fp_sum: f64,
        fn_sum: f64,
    },
    PaperRatio {
        ln_fp: f64,
        ln_fn: f64,
        ln_total: f64,
    },
}

impl EstimatorState {
    fn absorb(&mut self, ln_j1: f64, ln_j0: f64) {
        let ln_p = log_sum_exp2(ln_j1, ln_j0);
        match self {
            EstimatorState::SelfNormalized { fp_sum, fn_sum } => {
                // min / P(s): the losing hypothesis' posterior share.
                if ln_j1 > ln_j0 {
                    *fp_sum += (ln_j0 - ln_p).exp();
                } else {
                    *fn_sum += (ln_j1 - ln_p).exp();
                }
            }
            EstimatorState::PaperRatio {
                ln_fp,
                ln_fn,
                ln_total,
            } => {
                if ln_j1 > ln_j0 {
                    *ln_fp = log_sum_exp2(*ln_fp, ln_j0);
                } else {
                    *ln_fn = log_sum_exp2(*ln_fn, ln_j1);
                }
                *ln_total = log_sum_exp2(*ln_total, ln_p);
            }
        }
    }

    fn result(&self, samples: usize) -> BoundResult {
        match self {
            EstimatorState::SelfNormalized { fp_sum, fn_sum } => {
                let t = samples.max(1) as f64;
                BoundResult {
                    error: (fp_sum + fn_sum) / t,
                    false_positive: fp_sum / t,
                    false_negative: fn_sum / t,
                }
            }
            EstimatorState::PaperRatio {
                ln_fp,
                ln_fn,
                ln_total,
            } => {
                if *ln_total == f64::NEG_INFINITY {
                    return BoundResult::default();
                }
                BoundResult {
                    error: (log_sum_exp2(*ln_fp, *ln_fn) - ln_total).exp(),
                    false_positive: (ln_fp - ln_total).exp(),
                    false_negative: (ln_fn - ln_total).exp(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::exact::exact_bound;

    fn informative() -> Vec<(f64, f64)> {
        vec![
            (0.75, 0.30),
            (0.55, 0.25),
            (0.65, 0.45),
            (0.80, 0.20),
            (0.50, 0.35),
        ]
    }

    #[test]
    #[cfg_attr(miri, ignore = "sampling sweep is too slow under Miri")]
    fn self_normalized_tracks_exact() {
        let probs = informative();
        let exact = exact_bound(&probs, 0.6).unwrap();
        let cfg = GibbsConfig {
            min_samples: 4000,
            max_samples: 40_000,
            tol: 1e-4,
            seed: 42,
            ..GibbsConfig::default()
        };
        let approx = gibbs_bound(&probs, 0.6, &cfg).unwrap();
        assert!(
            (approx.result.error - exact.error).abs() < 0.015,
            "approx {} vs exact {}",
            approx.result.error,
            exact.error
        );
        // FP/FN split is also close.
        assert!((approx.result.false_positive - exact.false_positive).abs() < 0.02);
        assert!((approx.result.false_negative - exact.false_negative).abs() < 0.02);
    }

    #[test]
    #[cfg_attr(miri, ignore = "sampling sweep is too slow under Miri")]
    fn split_sums_to_total() {
        let cfg = GibbsConfig {
            seed: 3,
            ..GibbsConfig::default()
        };
        let out = gibbs_bound(&informative(), 0.5, &cfg).unwrap();
        let r = out.result;
        assert!((r.false_positive + r.false_negative - r.error).abs() < 1e-12);
        assert!(out.samples > 0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "sampling sweep is too slow under Miri")]
    fn deterministic_per_seed() {
        let cfg = GibbsConfig {
            seed: 11,
            ..GibbsConfig::default()
        };
        let a = gibbs_bound(&informative(), 0.5, &cfg).unwrap();
        let b = gibbs_bound(&informative(), 0.5, &cfg).unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    #[cfg_attr(miri, ignore = "sampling sweep is too slow under Miri")]
    fn paper_ratio_runs_and_differs_in_general() {
        // With heterogeneous pattern probabilities the literal Eq. 6
        // estimator is biased toward probable patterns; on this input the
        // two estimators disagree measurably while SelfNormalized matches
        // the exact bound.
        let probs = vec![(0.95, 0.05), (0.9, 0.1), (0.6, 0.55), (0.52, 0.5)];
        let exact = exact_bound(&probs, 0.5).unwrap();
        let mk = |estimator| GibbsConfig {
            estimator,
            min_samples: 6000,
            max_samples: 60_000,
            tol: 5e-5,
            seed: 17,
            ..GibbsConfig::default()
        };
        let sn = gibbs_bound(&probs, 0.5, &mk(GibbsEstimator::SelfNormalized)).unwrap();
        let pr = gibbs_bound(&probs, 0.5, &mk(GibbsEstimator::PaperRatio)).unwrap();
        assert!((sn.result.error - exact.error).abs() < 0.01);
        // The ratio estimator yields *a* number in [0, 0.5]; we only pin
        // down that it ran and stayed in range (its bias is input-specific).
        assert!(pr.result.error >= 0.0 && pr.result.error <= 0.5 + 1e-9);
    }

    #[test]
    #[cfg_attr(miri, ignore = "sampling sweep is too slow under Miri")]
    fn uninformative_sources_approach_prior() {
        let probs = vec![(0.4, 0.4); 10];
        let cfg = GibbsConfig {
            min_samples: 2000,
            seed: 8,
            ..GibbsConfig::default()
        };
        let out = gibbs_bound(&probs, 0.3, &cfg).unwrap();
        assert!((out.result.error - 0.3).abs() < 0.02);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            gibbs_bound(&[], 0.5, &GibbsConfig::default()),
            Err(SenseError::EmptyData)
        ));
        assert!(gibbs_bound(&[(1.2, 0.5)], 0.5, &GibbsConfig::default()).is_err());
        let bad = GibbsConfig {
            thin: 0,
            ..GibbsConfig::default()
        };
        assert!(matches!(
            gibbs_bound(&[(0.5, 0.5)], 0.5, &bad),
            Err(SenseError::BadConfig { .. })
        ));
    }

    #[test]
    #[cfg_attr(miri, ignore = "sampling sweep is too slow under Miri")]
    fn scales_to_hundreds_of_sources() {
        let probs: Vec<(f64, f64)> = (0..300)
            .map(|i| {
                (
                    0.5 + 0.3 * ((i % 7) as f64 / 7.0),
                    0.4 - 0.2 * ((i % 5) as f64 / 5.0),
                )
            })
            .collect();
        let cfg = GibbsConfig {
            min_samples: 200,
            max_samples: 1000,
            seed: 2,
            ..GibbsConfig::default()
        };
        let out = gibbs_bound(&probs, 0.5, &cfg).unwrap();
        assert!(out.result.error.is_finite());
        assert!(out.result.error >= 0.0 && out.result.error <= 0.5 + 1e-9);
    }
}
