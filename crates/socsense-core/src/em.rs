//! EM-Ext: the dependency-aware maximum-likelihood estimator
//! (Algorithm 2; Eqs. 9–14 / Appendix Eqs. 24–28).
//!
//! The E-step evaluates the truth posterior `Z_j = P(C_j = 1 | SC_j; D, θ)`
//! for every assertion with the sparse kernel from [`crate::likelihood`].
//! The M-step re-estimates each source's `(a, b, f, g)` as posterior-
//! weighted claim frequencies, split by the dependency indicator:
//!
//! ```text
//! a_i = Σ_{j: SC=1, D=0} Z_j / Σ_{j: D=0} Z_j     f_i = Σ_{j: SC=1, D=1} Z_j / Σ_{j: D=1} Z_j
//! b_i = Σ_{j: SC=1, D=0} Y_j / Σ_{j: D=0} Y_j     g_i = Σ_{j: SC=1, D=1} Y_j / Σ_{j: D=1} Y_j
//! z   = Σ_j Z_j / m                               (Y_j = 1 - Z_j)
//! ```
//!
//! Denominators are computed sparsely: `Σ_{j: D=0} Z_j = Σ_j Z_j - Σ_{j ∈
//! D-row(i)} Z_j`, so one iteration costs `O(nnz(SC) + nnz(D) + n + m)`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use socsense_matrix::parallel::{par_fill, par_map_collect, Parallelism};
use socsense_obs::Obs;

use crate::data::ClaimData;
use crate::error::SenseError;
use crate::likelihood::{data_log_likelihood_with, LikelihoodTables};
use crate::model::{SourceParams, Theta};

/// How the EM parameters are initialised.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InitStrategy {
    /// Runs both deterministic initialisations
    /// ([`ClaimRateBiased`](Self::ClaimRateBiased) and
    /// [`DepBiased`](Self::DepBiased)) and keeps the fit with the higher
    /// observed-data log-likelihood. Whether repeated (dependent) content
    /// signals truth is exactly what varies between datasets — rumor-heavy
    /// social data wants the neutral start, generator-style data where
    /// dependent claims are informative wants the biased one — so the
    /// likelihood, not a fixed prior, makes the call. Default.
    Auto,
    /// Deterministic, data-driven: `a_i = min(0.95, 1.5·r_i)`,
    /// `b_i = 0.5·r_i`, and `f_i = g_i = r_i`, where `r_i` is source
    /// `i`'s claim rate. The `a > b` asymmetry breaks the label-swap
    /// symmetry of the likelihood in the direction the paper intends
    /// (independent claims lean toward true assertions); dependent claims
    /// start *neutral* (`f = g`) so repeated content carries no weight
    /// until the M-step learns that it should.
    ClaimRateBiased,
    /// As [`ClaimRateBiased`](Self::ClaimRateBiased) but with the same
    /// truth-lean applied to dependent claims (`f_i = 1.5·r_i`,
    /// `g_i = 0.5·r_i`).
    DepBiased,
    /// All parameters drawn uniformly at random (seeded); used by
    /// restarts.
    Random {
        /// RNG seed for the draw.
        seed: u64,
    },
}

/// Configuration for [`EmExt`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmConfig {
    /// Iteration cap (Algorithm 2 loops "while θ not convergent").
    pub max_iters: usize,
    /// Convergence threshold on `max |Δθ|` between iterations.
    pub tol: f64,
    /// Clamping margin keeping every probability in `[eps, 1-eps]`.
    pub eps: f64,
    /// Parameter initialisation.
    pub init: InitStrategy,
    /// Extra random restarts; the fit with the best final observed-data
    /// log-likelihood wins. `0` runs only `init`.
    pub restarts: usize,
    /// Base seed for restart draws.
    pub seed: u64,
    /// Hierarchical shrinkage pseudo-count `s`: each M-step rate becomes
    /// `(num + s·pop) / (den + s)` where `pop` is the population-level
    /// rate for the same parameter. `0.0` reproduces the paper's update
    /// exactly (Eqs. 24–28). At Twitter scale most sources contribute a
    /// handful of observations per parameter; shrinkage trades a little
    /// bias for a large variance cut, which matters most for the
    /// dependent-claim rates `f`/`g` (see DESIGN.md §4 and the
    /// `em_smoothing` ablation bench).
    pub smoothing: f64,
    /// Worker threads for the E-step, M-step, and restart sweep.
    ///
    /// Never changes the numbers: the parallel layer
    /// ([`socsense_matrix::parallel`]) uses fixed chunk boundaries and
    /// in-order merges, so every level returns bit-identical fits. Only
    /// wall-clock time varies.
    #[serde(default)]
    pub parallelism: Parallelism,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            max_iters: 200,
            tol: 1e-6,
            eps: 1e-6,
            init: InitStrategy::Auto,
            restarts: 0,
            seed: 0,
            smoothing: 2.0,
            parallelism: Parallelism::Auto,
        }
    }
}

/// The EM-Ext estimator (Algorithm 2 of the paper).
///
/// # Example
///
/// ```
/// use socsense_core::{classify, ClaimData, EmConfig, EmExt};
/// use socsense_matrix::SparseBinaryMatrix;
///
/// // Two reliable sources claim assertion 0; nobody claims assertion 1.
/// let sc = SparseBinaryMatrix::from_entries(2, 2, [(0, 0), (1, 0)]);
/// let d = SparseBinaryMatrix::empty(2, 2);
/// let data = ClaimData::new(sc, d)?;
/// let fit = EmExt::new(EmConfig::default()).fit(&data)?;
/// let labels = classify(&fit.posterior);
/// assert!(labels[0] && !labels[1]);
/// # Ok::<(), socsense_core::SenseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EmExt {
    config: EmConfig,
    obs: Obs,
}

/// Result of one [`EmExt::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmFit {
    /// Estimated parameter set `θ̂`.
    pub theta: Theta,
    /// `P(C_j = 1 | SC_j; D, θ̂)` per assertion.
    pub posterior: Vec<f64>,
    /// Final observed-data log-likelihood `ln P(SC; θ̂)`.
    pub log_likelihood: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether `max |Δθ| < tol` was reached before `max_iters`.
    pub converged: bool,
    /// Observed-data log-likelihood after every iteration (EM guarantees
    /// this is non-decreasing up to the clamping margin).
    pub ll_history: Vec<f64>,
    /// Posterior log-odds `ln P(C_j=1|·) − ln P(C_j=0|·)` per assertion:
    /// the saturation-free ranking key corresponding to `posterior`.
    pub log_odds: Vec<f64>,
}

impl EmExt {
    /// Creates an estimator with the given configuration.
    pub fn new(config: EmConfig) -> Self {
        Self {
            config,
            obs: Obs::none(),
        }
    }

    /// Attaches a metrics handle; every fit then reports `em.*`
    /// convergence metrics (run counts, iteration histograms, final
    /// deltas, log-likelihood improvements, wall time). Metrics are
    /// observation-only: the fit itself is bit-identical with or
    /// without a sink.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &EmConfig {
        &self.config
    }

    /// Runs EM starting from an explicit parameter set (a *warm start*).
    ///
    /// Used by the streaming estimator: after new claims arrive, the
    /// previous `θ̂` is usually near the new optimum and convergence takes
    /// a fraction of a cold start's iterations. No restarts are run.
    ///
    /// # Errors
    ///
    /// As [`fit`](Self::fit), plus [`SenseError::DimensionMismatch`] when
    /// `theta` covers a different number of sources than `data`.
    pub fn fit_warm(&self, data: &ClaimData, theta: Theta) -> Result<EmFit, SenseError> {
        self.check_config()?;
        if theta.source_count() != data.source_count() {
            return Err(SenseError::DimensionMismatch {
                what: "warm-start theta source count vs data",
                expected: data.source_count(),
                actual: theta.source_count(),
            });
        }
        self.obs.counter("em.warm_starts_total", 1);
        self.run_em(data, theta)
    }

    /// Validates the configuration without running anything. Exposed
    /// crate-internally so the delta refit path can reject a bad
    /// configuration *before* mutating any incremental state (the
    /// failed-refit-preserves-warm-state contract).
    pub(crate) fn check_config(&self) -> Result<(), SenseError> {
        if self.config.max_iters == 0 {
            return Err(SenseError::BadConfig {
                what: "max_iters must be positive",
            });
        }
        if self.config.tol <= 0.0 || self.config.tol.is_nan() {
            return Err(SenseError::BadConfig {
                what: "tol must be positive",
            });
        }
        if !self.config.smoothing.is_finite() || self.config.smoothing < 0.0 {
            return Err(SenseError::BadConfig {
                what: "smoothing must be non-negative",
            });
        }
        Ok(())
    }

    /// Runs EM (plus any configured restarts) on `data`.
    ///
    /// # Errors
    ///
    /// Returns [`SenseError::BadConfig`] for a non-positive tolerance or
    /// zero iteration budget, and propagates dimension errors.
    pub fn fit(&self, data: &ClaimData) -> Result<EmFit, SenseError> {
        self.check_config()?;
        let timer = self.obs.timer("em.fit.seconds");
        let deterministic: Vec<InitStrategy> = match self.config.init {
            InitStrategy::Auto => vec![InitStrategy::ClaimRateBiased, InitStrategy::DepBiased],
            other => vec![other],
        };
        let inits: Vec<InitStrategy> = deterministic
            .into_iter()
            .chain((0..self.config.restarts).map(|r| InitStrategy::Random {
                seed: self.config.seed.wrapping_add(r as u64 + 1),
            }))
            .collect();
        // Each init fits independently, so the sweep parallelises across
        // inits; the inner EM loops then run serially to avoid nested
        // thread fan-out (bit-identical either way, see EmConfig docs).
        let inner = if inits.len() > 1 {
            Parallelism::Serial
        } else {
            self.config.parallelism
        };
        self.obs.counter("em.fit.inits_total", inits.len() as u64);
        self.obs
            .counter("em.fit.restarts_total", self.config.restarts as u64);
        let fits = par_map_collect(self.config.parallelism, inits.len(), |k| {
            self.fit_once(data, inits[k], inner)
        });
        // Keep-best folds in init order with a strict `>`, so the
        // *earliest* init wins exact log-likelihood ties — the same
        // winner the sequential sweep picked.
        let mut best: Option<EmFit> = None;
        for fit in fits {
            let fit = fit?;
            if best
                .as_ref()
                .is_none_or(|b| fit.log_likelihood > b.log_likelihood)
            {
                best = Some(fit);
            }
        }
        timer.stop();
        // detlint: allow(P1) -- the init-strategy list is a nonempty const, so the loop above always assigns `best`
        Ok(best.expect("at least one init always runs"))
    }

    /// The deterministic data-driven starting point
    /// ([`InitStrategy::ClaimRateBiased`]) for `data`.
    ///
    /// Exposed for warm-start blending: the streaming estimator mixes the
    /// previous `θ̂` with this anchor so that an unlucky early basin
    /// cannot lock in forever (see
    /// [`StreamingEstimator`](crate::StreamingEstimator)).
    pub fn data_driven_start(&self, data: &ClaimData) -> Theta {
        self.initial_theta(data, InitStrategy::ClaimRateBiased)
    }

    fn initial_theta(&self, data: &ClaimData, init: InitStrategy) -> Theta {
        let n = data.source_count();
        let m = data.assertion_count() as f64;
        match init {
            InitStrategy::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut t = Theta::random(n, &mut rng);
                t.clamp_in_place(self.config.eps);
                t
            }
            InitStrategy::Auto | InitStrategy::ClaimRateBiased | InitStrategy::DepBiased => {
                let dep_biased = matches!(init, InitStrategy::DepBiased);
                let mut t = Theta::neutral(n);
                for i in 0..n {
                    let r = data.sc().row_nnz(i as u32) as f64 / m;
                    let hi = (1.5 * r).clamp(self.config.eps, 0.95);
                    let lo = (0.5 * r).clamp(self.config.eps, 0.95);
                    let mid = r.clamp(self.config.eps, 0.95);
                    let (f, g) = if dep_biased { (hi, lo) } else { (mid, mid) };
                    t.set_source(i, SourceParams { a: hi, b: lo, f, g });
                }
                t.set_z(0.5);
                t
            }
        }
    }

    fn fit_once(
        &self,
        data: &ClaimData,
        init: InitStrategy,
        par: Parallelism,
    ) -> Result<EmFit, SenseError> {
        self.run_em_with(data, self.initial_theta(data, init), par)
    }

    /// The EM loop proper, from an explicit starting point.
    fn run_em(&self, data: &ClaimData, start: Theta) -> Result<EmFit, SenseError> {
        self.run_em_with(data, start, self.config.parallelism)
    }

    fn run_em_with(
        &self,
        data: &ClaimData,
        start: Theta,
        par: Parallelism,
    ) -> Result<EmFit, SenseError> {
        // Runs may execute inside the restart sweep's parallel region,
        // so only commutative emissions (counters, observations) are
        // made here — recorded totals stay deterministic.
        let _run_timer = self.obs.timer("em.run.seconds");
        let n = data.source_count();
        let m = data.assertion_count();
        let eps = self.config.eps;
        let mut theta = start;
        let mut posterior = vec![0.5; m];
        let mut ll_history = Vec::new();
        let mut converged = false;
        let mut iterations = 0;
        let mut last_delta = f64::INFINITY;

        for _ in 0..self.config.max_iters {
            iterations += 1;

            // E-step (Eq. 9). Each posterior reads one column, so the
            // fill parallelises over fixed index chunks.
            let tables = LikelihoodTables::new(&theta);
            par_fill(par, &mut posterior, |j| {
                tables.column_posterior(data.sc().col(j as u32), data.d().col(j as u32))
            });

            // M-step (Eqs. 24–28), sparse form. Pass 1 accumulates the
            // posterior-weighted claim counts and exposures per source
            // (plus population totals); pass 2 applies the optional
            // hierarchical shrinkage toward the population rates.
            let sum_z: f64 = posterior.iter().sum();
            let sum_y = m as f64 - sum_z;
            let mut next = theta.clone();
            // [num_a, den_a, num_b, den_b, num_f, den_f, num_g, den_g],
            // one partial accumulator per source, computed in parallel
            // and collected in source order.
            let counts: Vec<[f64; 8]> = par_map_collect(par, n, |iu| {
                let i = iu as u32;
                let mut dep_z = 0.0;
                let mut dep_cells = 0usize;
                for &j in data.d().row(i) {
                    dep_z += posterior[j as usize];
                    dep_cells += 1;
                }
                let dep_y = dep_cells as f64 - dep_z;

                let (mut num_a, mut num_b, mut num_f, mut num_g) = (0.0, 0.0, 0.0, 0.0);
                // Merge SC-row with D-row to split claims by dependency.
                let dep_row = data.d().row(i);
                let mut dep_iter = dep_row.iter().peekable();
                for &j in data.sc().row(i) {
                    while dep_iter.peek().is_some_and(|&&dj| dj < j) {
                        dep_iter.next();
                    }
                    let is_dep = dep_iter.peek() == Some(&&j);
                    let zj = posterior[j as usize];
                    if is_dep {
                        num_f += zj;
                        num_g += 1.0 - zj;
                    } else {
                        num_a += zj;
                        num_b += 1.0 - zj;
                    }
                }

                [
                    num_a,
                    sum_z - dep_z,
                    num_b,
                    sum_y - dep_y,
                    num_f,
                    dep_z,
                    num_g,
                    dep_y,
                ]
            });
            // Population totals fold in source order — the same order
            // the sequential loop summed them in.
            let mut pop = [0.0f64; 8];
            for c in &counts {
                for (p, v) in pop.iter_mut().zip(c) {
                    *p += v;
                }
            }
            // Population rates per parameter (num totals over den totals).
            let pop_rate = |k: usize| {
                if pop[2 * k + 1] > 1e-12 {
                    pop[2 * k] / pop[2 * k + 1]
                } else {
                    0.5
                }
            };
            let pop_rates = [pop_rate(0), pop_rate(1), pop_rate(2), pop_rate(3)];
            let s = self.config.smoothing;
            for (i, c) in counts.iter().enumerate() {
                let prev = *theta.source(i);
                let fallback = [prev.a, prev.b, prev.f, prev.g];
                let mut vals = [0.0f64; 4];
                for k in 0..4 {
                    let (num, den) = (c[2 * k], c[2 * k + 1]);
                    vals[k] = if den + s > 1e-12 {
                        (num + s * pop_rates[k]) / (den + s)
                    } else {
                        fallback[k]
                    };
                }
                next.set_source(
                    i,
                    SourceParams {
                        a: vals[0],
                        b: vals[1],
                        f: vals[2],
                        g: vals[3],
                    },
                );
            }
            next.set_z(sum_z / m as f64);
            next.clamp_in_place(eps);

            let delta = theta.max_abs_diff(&next)?;
            theta = next;
            last_delta = delta;
            ll_history.push(data_log_likelihood_with(data, &theta, par)?);
            if delta < self.config.tol {
                converged = true;
                break;
            }
        }

        if self.obs.enabled() {
            self.obs.counter("em.runs_total", 1);
            self.obs.counter("em.iterations_total", iterations as u64);
            if converged {
                self.obs.counter("em.runs_converged_total", 1);
            }
            self.obs.observe("em.run.iterations", iterations as f64);
            self.obs.observe("em.run.final_delta", last_delta);
            if let (Some(&first), Some(&last)) = (ll_history.first(), ll_history.last()) {
                self.obs.observe("em.run.ll_improvement", last - first);
            }
        }

        // Final posterior (and its log-odds) under the final θ.
        let tables = LikelihoodTables::new(&theta);
        let mut log_odds = vec![0.0; m];
        par_fill(par, &mut posterior, |j| {
            tables.column_posterior(data.sc().col(j as u32), data.d().col(j as u32))
        });
        par_fill(par, &mut log_odds, |j| {
            tables.column_log_odds(data.sc().col(j as u32), data.d().col(j as u32))
        });
        // detlint: allow(P1) -- EM runs at least one iteration (max_iters >= 1 is config-validated), so the history is nonempty
        let log_likelihood = *ll_history.last().expect("at least one iteration ran");
        Ok(EmFit {
            theta,
            posterior,
            log_likelihood,
            iterations,
            converged,
            ll_history,
            log_odds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::classify;
    use socsense_matrix::SparseBinaryMatrix;

    /// 6 sources: 0..3 reliable (claim true assertions 0..4),
    /// 4..5 liars (claim false assertions 5..9).
    fn separable_data() -> (ClaimData, Vec<bool>) {
        let mut entries = Vec::new();
        for i in 0..4u32 {
            for j in 0..5u32 {
                entries.push((i, j));
            }
        }
        for i in 4..6u32 {
            for j in 5..10u32 {
                entries.push((i, j));
            }
        }
        let sc = SparseBinaryMatrix::from_entries(6, 10, entries);
        let d = SparseBinaryMatrix::empty(6, 10);
        let truth = (0..10).map(|j| j < 5).collect();
        (ClaimData::new(sc, d).unwrap(), truth)
    }

    #[test]
    #[cfg_attr(miri, ignore = "EM sweep is too slow under Miri")]
    fn recovers_separable_truth() {
        let (data, truth) = separable_data();
        let fit = EmExt::new(EmConfig::default()).fit(&data).unwrap();
        assert!(fit.converged, "should converge on tiny data");
        assert_eq!(classify(&fit.posterior), truth);
        // Reliable majority sources end with high a.
        assert!(fit.theta.source(0).a > 0.8);
    }

    #[test]
    #[cfg_attr(miri, ignore = "EM sweep is too slow under Miri")]
    fn log_likelihood_is_monotone_nondecreasing_without_smoothing() {
        // Smoothing = 0 is the paper's exact EM, whose observed-data
        // log-likelihood is guaranteed non-decreasing; with shrinkage the
        // iteration maximises a penalised objective instead.
        let (data, _) = separable_data();
        let fit = EmExt::new(EmConfig {
            smoothing: 0.0,
            ..EmConfig::default()
        })
        .fit(&data)
        .unwrap();
        for w in fit.ll_history.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-8,
                "EM log-likelihood decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "EM sweep is too slow under Miri")]
    fn deterministic_given_config() {
        let (data, _) = separable_data();
        let em = EmExt::new(EmConfig::default());
        let f1 = em.fit(&data).unwrap();
        let f2 = em.fit(&data).unwrap();
        assert_eq!(f1.posterior, f2.posterior);
        assert_eq!(f1.theta, f2.theta);
    }

    #[test]
    #[cfg_attr(miri, ignore = "EM sweep is too slow under Miri")]
    fn auto_init_tie_keeps_the_earliest_init() {
        // With no dependent cells the f/g parameters are inert: the
        // ClaimRateBiased and DepBiased sweeps reach bit-identical
        // log-likelihoods while their f/g values differ (smoothing 0
        // preserves the init values through every M-step). The keep-best
        // fold must use a strict `>` so the FIRST init wins the tie; a
        // `>=` regression — easy to introduce when parallelising the
        // sweep — would silently return the second init's fit.
        let (data, _) = separable_data();
        let cfg = EmConfig {
            smoothing: 0.0,
            ..EmConfig::default()
        };
        let auto = EmExt::new(cfg).fit(&data).unwrap();
        let first = EmExt::new(EmConfig {
            init: InitStrategy::ClaimRateBiased,
            ..cfg
        })
        .fit(&data)
        .unwrap();
        let second = EmExt::new(EmConfig {
            init: InitStrategy::DepBiased,
            ..cfg
        })
        .fit(&data)
        .unwrap();
        assert_eq!(
            second.log_likelihood.to_bits(),
            first.log_likelihood.to_bits(),
            "premise: the two inits must tie exactly on this data"
        );
        assert_ne!(first.theta, second.theta, "premise: fits must differ");
        assert_eq!(auto.theta, first.theta, "earliest init must win the tie");
    }

    #[test]
    #[cfg_attr(miri, ignore = "EM sweep is too slow under Miri")]
    fn parallelism_levels_give_bit_identical_fits() {
        let (data, _) = separable_data();
        let fit_at = |par| {
            EmExt::new(EmConfig {
                restarts: 2,
                parallelism: par,
                ..EmConfig::default()
            })
            .fit(&data)
            .unwrap()
        };
        let serial = fit_at(Parallelism::Serial);
        for par in [
            Parallelism::Auto,
            Parallelism::Threads(2),
            Parallelism::Threads(4),
        ] {
            let threaded = fit_at(par);
            assert_eq!(serial.theta, threaded.theta, "{par:?}");
            assert_eq!(serial.posterior, threaded.posterior, "{par:?}");
            assert_eq!(serial.ll_history, threaded.ll_history, "{par:?}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "EM sweep is too slow under Miri")]
    fn restarts_never_worsen_likelihood() {
        let (data, _) = separable_data();
        let base = EmExt::new(EmConfig::default()).fit(&data).unwrap();
        let multi = EmExt::new(EmConfig {
            restarts: 3,
            ..EmConfig::default()
        })
        .fit(&data)
        .unwrap();
        assert!(multi.log_likelihood >= base.log_likelihood - 1e-9);
    }

    #[test]
    #[cfg_attr(miri, ignore = "EM sweep is too slow under Miri")]
    fn dependent_claims_are_discounted() {
        // Root source 0 claims assertions 0..6; sources 1..=4 echo it
        // (dependent). One independent contradicting source claims 7..9.
        let mut entries = vec![];
        let mut dep = vec![];
        for j in 0..6u32 {
            entries.push((0u32, j));
            for i in 1..5u32 {
                entries.push((i, j));
                dep.push((i, j));
            }
        }
        for j in 6..9u32 {
            entries.push((5u32, j));
        }
        let sc = SparseBinaryMatrix::from_entries(6, 9, entries.clone());
        let d_with = SparseBinaryMatrix::from_entries(6, 9, dep);
        let d_without = SparseBinaryMatrix::empty(6, 9);
        let with = EmExt::new(EmConfig::default())
            .fit(&ClaimData::new(sc.clone(), d_with).unwrap())
            .unwrap();
        let without = EmExt::new(EmConfig::default())
            .fit(&ClaimData::new(sc, d_without).unwrap())
            .unwrap();
        // Ignoring dependencies, the echoed assertions look much more
        // substantiated than the lone claims; the dependency-aware fit
        // narrows that gap.
        let gap_with = with.posterior[0] - with.posterior[7];
        let gap_without = without.posterior[0] - without.posterior[7];
        assert!(
            gap_with <= gap_without + 1e-9,
            "dependency-aware gap {gap_with} should not exceed naive gap {gap_without}"
        );
    }

    #[test]
    fn bad_config_rejected() {
        let (data, _) = separable_data();
        assert!(matches!(
            EmExt::new(EmConfig {
                max_iters: 0,
                ..EmConfig::default()
            })
            .fit(&data),
            Err(SenseError::BadConfig { .. })
        ));
        assert!(matches!(
            EmExt::new(EmConfig {
                tol: 0.0,
                ..EmConfig::default()
            })
            .fit(&data),
            Err(SenseError::BadConfig { .. })
        ));
    }

    #[test]
    #[cfg_attr(miri, ignore = "EM sweep is too slow under Miri")]
    fn recorder_observes_without_changing_the_fit() {
        let (data, _) = separable_data();
        let plain = EmExt::new(EmConfig::default()).fit(&data).unwrap();
        let (obs, rec) = Obs::recorder();
        let traced = EmExt::new(EmConfig::default())
            .with_obs(obs)
            .fit(&data)
            .unwrap();

        let bits = |p: &[f64]| p.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&plain.posterior), bits(&traced.posterior));
        assert_eq!(plain.theta, traced.theta);
        assert_eq!(plain.ll_history, traced.ll_history);

        let snap = rec.snapshot();
        // Auto init sweeps both deterministic starting points.
        assert_eq!(snap.counter("em.fit.inits_total"), 2);
        assert_eq!(snap.counter("em.runs_total"), 2);
        assert_eq!(snap.counter("em.runs_converged_total"), 2);
        assert_eq!(snap.histogram("em.run.iterations").unwrap().count, 2);
        assert_eq!(snap.histogram("em.fit.seconds").unwrap().count, 1);
        assert!(snap.histogram("em.run.final_delta").unwrap().max < 1e-6);
        assert!(snap.histogram("em.run.ll_improvement").unwrap().min >= 0.0);
        assert!(snap.counter("em.iterations_total") >= 2);
    }

    #[test]
    #[cfg_attr(miri, ignore = "EM sweep is too slow under Miri")]
    fn recorded_totals_are_parallelism_invariant() {
        let (data, _) = separable_data();
        let totals_at = |par| {
            let (obs, rec) = Obs::recorder();
            EmExt::new(EmConfig {
                restarts: 2,
                parallelism: par,
                ..EmConfig::default()
            })
            .with_obs(obs)
            .fit(&data)
            .unwrap();
            let snap = rec.snapshot();
            (
                snap.counter("em.runs_total"),
                snap.counter("em.iterations_total"),
                snap.histogram("em.run.iterations").unwrap().sum,
            )
        };
        assert_eq!(
            totals_at(Parallelism::Serial),
            totals_at(Parallelism::Threads(4))
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "EM sweep is too slow under Miri")]
    fn estimated_z_tracks_truth_share() {
        let (data, truth) = separable_data();
        let fit = EmExt::new(EmConfig::default()).fit(&data).unwrap();
        let truth_share = truth.iter().filter(|&&t| t).count() as f64 / truth.len() as f64;
        assert!((fit.theta.z() - truth_share).abs() < 0.15);
    }
}
