//! Log-likelihood kernels (Eqs. 4, 5, and 9 of the paper).
//!
//! The naive evaluation of `P(SC_j | C_j; D, θ)` multiplies one Bernoulli
//! factor per source per assertion — `O(n·m)` per EM iteration, which is
//! prohibitive at Twitter scale. The kernels here instead precompute, for
//! each hypothesis `C_j ∈ {0, 1}`, the log-probability of the *all-silent,
//! all-independent* pattern and then apply sparse corrections:
//!
//! 1. for every dependent cell (column of `D`), switch the silent factor
//!    from `1 - a_i` to `1 - f_i` (resp. `1 - b_i` → `1 - g_i`);
//! 2. for every claim (column of `SC`), switch the silent factor to the
//!    claiming one (`a_i`, `f_i`, `b_i`, or `g_i` according to `D`).
//!
//! Total cost per iteration is `O(nnz(SC) + nnz(D))`.

use socsense_matrix::logprob::{log_sum_exp2, normalize_log_pair, safe_ln, safe_ln_1m};
use socsense_matrix::parallel::{par_map_collect, par_map_reduce, Parallelism};

use crate::data::ClaimData;
use crate::error::SenseError;
use crate::model::Theta;

/// Precomputed per-source log-probability tables for one `θ`.
///
/// Rebuild after every M-step; construction is `O(n)`.
#[derive(Debug, Clone)]
pub struct LikelihoodTables {
    /// `ln a_i`, `ln (1-a_i)`, ... laid out per source.
    ln_a: Vec<f64>,
    ln_1a: Vec<f64>,
    ln_b: Vec<f64>,
    ln_1b: Vec<f64>,
    ln_f: Vec<f64>,
    ln_1f: Vec<f64>,
    ln_g: Vec<f64>,
    ln_1g: Vec<f64>,
    /// `Σ_i ln(1-a_i)` — all-silent all-independent pattern under `C = 1`.
    base1: f64,
    /// `Σ_i ln(1-b_i)` — same under `C = 0`.
    base0: f64,
    ln_z: f64,
    ln_1z: f64,
}

impl LikelihoodTables {
    /// Builds the tables for `theta`.
    pub fn new(theta: &Theta) -> Self {
        let n = theta.source_count();
        let mut t = Self {
            ln_a: Vec::with_capacity(n),
            ln_1a: Vec::with_capacity(n),
            ln_b: Vec::with_capacity(n),
            ln_1b: Vec::with_capacity(n),
            ln_f: Vec::with_capacity(n),
            ln_1f: Vec::with_capacity(n),
            ln_g: Vec::with_capacity(n),
            ln_1g: Vec::with_capacity(n),
            base1: 0.0,
            base0: 0.0,
            ln_z: safe_ln(theta.z()),
            ln_1z: safe_ln_1m(theta.z()),
        };
        for s in theta.sources() {
            let ln_1a = safe_ln_1m(s.a);
            let ln_1b = safe_ln_1m(s.b);
            t.ln_a.push(safe_ln(s.a));
            t.ln_1a.push(ln_1a);
            t.ln_b.push(safe_ln(s.b));
            t.ln_1b.push(ln_1b);
            t.ln_f.push(safe_ln(s.f));
            t.ln_1f.push(safe_ln_1m(s.f));
            t.ln_g.push(safe_ln(s.g));
            t.ln_1g.push(safe_ln_1m(s.g));
            t.base1 += ln_1a;
            t.base0 += ln_1b;
        }
        t
    }

    /// Number of sources the tables cover.
    pub fn source_count(&self) -> usize {
        self.ln_a.len()
    }

    /// `(ln P(SC_j | C_j = 1), ln P(SC_j | C_j = 0))` for column `j`,
    /// computed with the sparse-correction scheme.
    ///
    /// `claimants` must be the sorted rows of `SC[:, j]` and `dep_rows` the
    /// sorted rows of `D[:, j]`.
    pub fn column_log_likelihood(&self, claimants: &[u32], dep_rows: &[u32]) -> (f64, f64) {
        let mut ln1 = self.base1;
        let mut ln0 = self.base0;
        // Correction 1: dependent cells flip the silent factor.
        for &i in dep_rows {
            let i = i as usize;
            ln1 += self.ln_1f[i] - self.ln_1a[i];
            ln0 += self.ln_1g[i] - self.ln_1b[i];
        }
        // Correction 2: claims flip silent -> claiming, split by D via a
        // linear merge of the two sorted row lists.
        let mut dep_iter = dep_rows.iter().peekable();
        for &i in claimants {
            while dep_iter.peek().is_some_and(|&&d| d < i) {
                dep_iter.next();
            }
            let is_dep = dep_iter.peek() == Some(&&i);
            let iu = i as usize;
            if is_dep {
                ln1 += self.ln_f[iu] - self.ln_1f[iu];
                ln0 += self.ln_g[iu] - self.ln_1g[iu];
            } else {
                ln1 += self.ln_a[iu] - self.ln_1a[iu];
                ln0 += self.ln_b[iu] - self.ln_1b[iu];
            }
        }
        (ln1, ln0)
    }

    /// Posterior `P(C_j = 1 | SC_j; D, θ)` (Eq. 9) for one column.
    pub fn column_posterior(&self, claimants: &[u32], dep_rows: &[u32]) -> f64 {
        let (ln1, ln0) = self.column_log_likelihood(claimants, dep_rows);
        normalize_log_pair(ln1 + self.ln_z, ln0 + self.ln_1z).0
    }

    /// Posterior log-odds `ln P(C_j=1|·) − ln P(C_j=0|·)` for one column.
    ///
    /// Monotone in [`column_posterior`](Self::column_posterior) but never
    /// saturates, so it remains a usable *ranking* key when posteriors
    /// round to exactly 0.0 or 1.0 in `f64`.
    pub fn column_log_odds(&self, claimants: &[u32], dep_rows: &[u32]) -> f64 {
        let (ln1, ln0) = self.column_log_likelihood(claimants, dep_rows);
        (ln1 + self.ln_z) - (ln0 + self.ln_1z)
    }
}

fn check_dims(data: &ClaimData, theta: &Theta) -> Result<(), SenseError> {
    if data.source_count() != theta.source_count() {
        return Err(SenseError::DimensionMismatch {
            what: "theta source count vs data",
            expected: data.source_count(),
            actual: theta.source_count(),
        });
    }
    Ok(())
}

/// `(ln P(SC_j | C_j = 1), ln P(SC_j | C_j = 0))` for every assertion `j`
/// (Eqs. 4–5).
///
/// # Errors
///
/// Returns [`SenseError::DimensionMismatch`] if `theta` covers a different
/// number of sources than `data`.
pub fn assertion_log_likelihoods(
    data: &ClaimData,
    theta: &Theta,
) -> Result<Vec<(f64, f64)>, SenseError> {
    assertion_log_likelihoods_with(data, theta, Parallelism::Auto)
}

/// [`assertion_log_likelihoods`] with an explicit [`Parallelism`] level.
/// Results are bit-identical across levels.
///
/// # Errors
///
/// As [`assertion_log_likelihoods`].
pub fn assertion_log_likelihoods_with(
    data: &ClaimData,
    theta: &Theta,
    par: Parallelism,
) -> Result<Vec<(f64, f64)>, SenseError> {
    check_dims(data, theta)?;
    let tables = LikelihoodTables::new(theta);
    Ok(par_map_collect(par, data.assertion_count(), |j| {
        tables.column_log_likelihood(data.sc().col(j as u32), data.d().col(j as u32))
    }))
}

/// Posterior truth probabilities `P(C_j = 1 | SC_j; D, θ)` for all
/// assertions (Eq. 9).
///
/// # Errors
///
/// Returns [`SenseError::DimensionMismatch`] on inconsistent shapes.
pub fn assertion_posteriors(data: &ClaimData, theta: &Theta) -> Result<Vec<f64>, SenseError> {
    assertion_posteriors_with(data, theta, Parallelism::Auto)
}

/// [`assertion_posteriors`] with an explicit [`Parallelism`] level.
/// Results are bit-identical across levels; each posterior depends on one
/// column only, so the work splits into fixed index chunks.
///
/// # Errors
///
/// As [`assertion_posteriors`].
pub fn assertion_posteriors_with(
    data: &ClaimData,
    theta: &Theta,
    par: Parallelism,
) -> Result<Vec<f64>, SenseError> {
    check_dims(data, theta)?;
    let tables = LikelihoodTables::new(theta);
    Ok(par_map_collect(par, data.assertion_count(), |j| {
        tables.column_posterior(data.sc().col(j as u32), data.d().col(j as u32))
    }))
}

/// The observed-data log-likelihood `ln P(SC; D, θ)` (Eq. 7):
/// `Σ_j ln( z·P(SC_j|C_j=1) + (1-z)·P(SC_j|C_j=0) )`.
///
/// # Errors
///
/// Returns [`SenseError::DimensionMismatch`] on inconsistent shapes.
pub fn data_log_likelihood(data: &ClaimData, theta: &Theta) -> Result<f64, SenseError> {
    data_log_likelihood_with(data, theta, Parallelism::Auto)
}

/// [`data_log_likelihood`] with an explicit [`Parallelism`] level.
///
/// The per-assertion terms are summed within fixed index chunks and the
/// chunk sums folded in chunk order, so the (non-associative) floating-
/// point total is bit-identical across levels.
///
/// # Errors
///
/// As [`data_log_likelihood`].
pub fn data_log_likelihood_with(
    data: &ClaimData,
    theta: &Theta,
    par: Parallelism,
) -> Result<f64, SenseError> {
    check_dims(data, theta)?;
    let tables = LikelihoodTables::new(theta);
    Ok(par_map_reduce(
        par,
        data.assertion_count(),
        0.0,
        |range| {
            let mut sum = 0.0;
            for j in range {
                let (ln1, ln0) =
                    tables.column_log_likelihood(data.sc().col(j as u32), data.d().col(j as u32));
                sum += log_sum_exp2(ln1 + tables.ln_z, ln0 + tables.ln_1z);
            }
            sum
        },
        |a, b| a + b,
    ))
}

/// Reference `O(n)` per-column evaluation used to validate the sparse
/// kernel in tests.
#[cfg(test)]
pub(crate) fn column_log_likelihood_naive(data: &ClaimData, theta: &Theta, j: u32, c: bool) -> f64 {
    let mut ln = 0.0;
    for i in 0..data.source_count() as u32 {
        let p = theta
            .source(i as usize)
            .claim_prob(c, data.dependent(i, j), data.claimed(i, j));
        ln += safe_ln(p);
    }
    ln
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceParams;
    use socsense_matrix::SparseBinaryMatrix;

    fn small_data() -> ClaimData {
        // 4 sources, 3 assertions.
        let sc = SparseBinaryMatrix::from_entries(4, 3, [(0, 0), (1, 0), (2, 1), (3, 2), (0, 2)]);
        let d = SparseBinaryMatrix::from_entries(4, 3, [(1, 0), (3, 2), (2, 2)]);
        ClaimData::new(sc, d).unwrap()
    }

    fn theta4() -> Theta {
        Theta::new(
            vec![
                SourceParams::new(0.7, 0.2, 0.6, 0.5).unwrap(),
                SourceParams::new(0.5, 0.4, 0.9, 0.1).unwrap(),
                SourceParams::new(0.3, 0.3, 0.2, 0.8).unwrap(),
                SourceParams::new(0.8, 0.1, 0.7, 0.6).unwrap(),
            ],
            0.6,
        )
        .unwrap()
    }

    #[test]
    fn sparse_kernel_matches_naive_product() {
        let data = small_data();
        let theta = theta4();
        let fast = assertion_log_likelihoods(&data, &theta).unwrap();
        for j in 0..3u32 {
            let naive1 = column_log_likelihood_naive(&data, &theta, j, true);
            let naive0 = column_log_likelihood_naive(&data, &theta, j, false);
            assert!(
                (fast[j as usize].0 - naive1).abs() < 1e-10,
                "j={j}: {} vs {naive1}",
                fast[j as usize].0
            );
            assert!((fast[j as usize].1 - naive0).abs() < 1e-10);
        }
    }

    #[test]
    fn posteriors_are_probabilities_and_match_bayes() {
        let data = small_data();
        let theta = theta4();
        let post = assertion_posteriors(&data, &theta).unwrap();
        for (j, &p) in post.iter().enumerate() {
            assert!((0.0..=1.0).contains(&p));
            let ln1 = column_log_likelihood_naive(&data, &theta, j as u32, true);
            let ln0 = column_log_likelihood_naive(&data, &theta, j as u32, false);
            let expected = (ln1.exp() * 0.6) / (ln1.exp() * 0.6 + ln0.exp() * 0.4);
            assert!((p - expected).abs() < 1e-10, "j={j}");
        }
    }

    #[test]
    fn log_likelihood_is_sum_of_marginals() {
        let data = small_data();
        let theta = theta4();
        let ll = data_log_likelihood(&data, &theta).unwrap();
        let mut expected = 0.0;
        for j in 0..3u32 {
            let p1 = column_log_likelihood_naive(&data, &theta, j, true).exp();
            let p0 = column_log_likelihood_naive(&data, &theta, j, false).exp();
            expected += (0.6 * p1 + 0.4 * p0).ln();
        }
        assert!((ll - expected).abs() < 1e-10);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let data = small_data();
        let theta = Theta::neutral(7);
        assert!(matches!(
            assertion_posteriors(&data, &theta),
            Err(SenseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn neutral_theta_gives_prior_posterior() {
        let data = small_data();
        let theta = Theta::neutral(4);
        let post = assertion_posteriors(&data, &theta).unwrap();
        for &p in &post {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn many_sources_do_not_underflow() {
        // 2000 silent unreliable sources would underflow linear space.
        let n = 2000u32;
        let sc = SparseBinaryMatrix::from_entries(n, 1, [(0u32, 0u32)]);
        let d = SparseBinaryMatrix::empty(n, 1);
        let data = ClaimData::new(sc, d).unwrap();
        let theta = Theta::new(
            vec![SourceParams::new(0.4, 0.35, 0.5, 0.5).unwrap(); n as usize],
            0.5,
        )
        .unwrap();
        let ll = data_log_likelihood(&data, &theta).unwrap();
        assert!(ll.is_finite());
        let post = assertion_posteriors(&data, &theta).unwrap();
        assert!(post[0].is_finite() && (0.0..=1.0).contains(&post[0]));
    }
}
