//! Delta refits: `O(touched)` scoped EM for the streaming/serve path.
//!
//! A full warm refit re-evaluates every assertion posterior and resums
//! every M-step statistic on each batch — `O(history)` per ingest. Once
//! the log is large, a small batch perturbs only the columns it reaches:
//! the claim cells themselves plus the cells of the claimants' `SC`/`D`
//! rows. [`DeltaEngine`] exploits this by keeping, between refits,
//!
//! * the posterior cache `Z_j` (and log-odds / per-assertion
//!   log-likelihood terms) of the last refit,
//! * the M-step sufficient statistics of Eqs. 24–28 in incremental form
//!   (`Σ_j Z_j` plus per-source claim counts and dependent-cell sums,
//!   maintained by subtracting old and adding new contributions), and
//! * a mutable mirror of the `SC`/`D` adjacency,
//!
//! so one refit costs `O(touched columns + n + m)` per iteration instead
//! of `O(nnz(SC) + nnz(D) + n + m)`. Untouched assertions are served
//! from the cache under a *bounded staleness* contract: the engine
//! maintains a rigorous bound on how far any cached posterior can sit
//! from a fresh E-step under the current `θ` (see
//! [`divergence_bound`](DeltaEngine::divergence_bound)), and the
//! streaming layer falls back to the ordinary full warm refit — the
//! bit-identical code path of [`RefitMode::Full`] — whenever accumulated
//! drift, batch volume, or that bound crosses the [`DeltaConfig`]
//! thresholds. DESIGN.md §10 derives the sum maintenance and the bound.

use serde::{Deserialize, Serialize};

use socsense_matrix::logprob::{log_sum_exp2, normalize_log_pair, safe_ln, safe_ln_1m};
use socsense_matrix::parallel::{par_map_collect, par_map_reduce, Parallelism};

use crate::data::ClaimData;
use crate::em::{EmConfig, EmFit};
use crate::error::SenseError;
use crate::likelihood::LikelihoodTables;
use crate::model::{SourceParams, Theta};

/// How a [`StreamingEstimator`](crate::StreamingEstimator) refits when
/// new claims arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum RefitMode {
    /// Every refit is a full warm EM over the whole log (the historical
    /// behaviour).
    #[default]
    Full,
    /// Refits are scoped to the batch's touched set, falling back to a
    /// full warm refit when the configured thresholds trip.
    Delta(DeltaConfig),
}

/// Thresholds governing when a delta refit chain falls back to a full
/// warm refit. All three accumulate from the last full refit and reset
/// with it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeltaConfig {
    /// Fallback when the summed per-refit parameter movement
    /// (`Σ max |Δθ|` across delta refits) exceeds this. Catches slow
    /// regime drift that no single refit reveals.
    pub max_drift: f64,
    /// Fallback when claims ingested since the last full refit exceed
    /// this fraction of the log size at that refit. `0.0` falls back on
    /// every batch — the configuration the bit-identity tests pin.
    pub max_batch_fraction: f64,
    /// Fallback when the proven staleness bound on any served cached
    /// posterior (the engine's per-column `¼·(Λ − stamp)` staleness
    /// bound — see `DeltaEngine::divergence_bound`) exceeds this.
    pub max_divergence: f64,
    /// Refresh the *exact* observed-data log-likelihood after every
    /// scoped refit (one `O(nnz)` pass, amortised against the scoped
    /// E-step savings) instead of serving the bounded-stale sum of
    /// per-assertion terms at their last evaluation. Off by default;
    /// posteriors are unaffected either way — this only changes the
    /// `log_likelihood` a delta fit reports, and
    /// [`RefitStats::ll_exact`](crate::RefitStats::ll_exact) records
    /// which form was served.
    #[serde(default)]
    pub exact_ll: bool,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        Self {
            max_drift: 0.05,
            max_batch_fraction: 0.25,
            max_divergence: 0.05,
            exact_ll: false,
        }
    }
}

impl DeltaConfig {
    /// Validates the thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`SenseError::BadConfig`] when any threshold is negative
    /// or not finite.
    pub fn validate(&self) -> Result<(), SenseError> {
        for v in [self.max_drift, self.max_batch_fraction, self.max_divergence] {
            if !v.is_finite() || v < 0.0 {
                return Err(SenseError::BadConfig {
                    what: "delta thresholds must be finite and non-negative",
                });
            }
        }
        Ok(())
    }
}

/// Which code path produced a refit (reported in
/// [`RefitStats`](crate::RefitStats)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefitOutcome {
    /// A full EM over the whole log (cold, or the warm chain of
    /// [`RefitMode::Full`] — including the first refit of a delta chain,
    /// which always runs full to seed the engine).
    Full,
    /// A scoped delta refit served from the incremental engine.
    Delta,
    /// A delta chain that tripped a [`DeltaConfig`] threshold and ran
    /// the full warm path instead.
    Fallback,
}

/// Per-source sufficient statistics of the dependency-split M-step
/// (Eqs. 24–28), maintained incrementally.
///
/// With `Y_j = 1 − Z_j`, the M-step for source `i` needs
/// `num_a = Σ_{j: SC=1, D=0} Z_j`, `num_f = Σ_{j: SC=1, D=1} Z_j`,
/// `dep_z = Σ_{j: D=1} Z_j`, plus the claim/dependent cell counts; every
/// other numerator and denominator is derived (see `m_step`).
#[derive(Debug, Clone, Copy, Default)]
struct SourceSums {
    /// `|SC-row(i)|` — claims by `i`.
    sc_cells: usize,
    /// `|SC-row(i) ∩ D-row(i)|` — dependent claims by `i`.
    sc_dep: usize,
    /// `|D-row(i)|` — dependent cells of `i`.
    dep_cells: usize,
    /// `Σ_{j ∈ D-row(i)} Z_j`.
    dep_z: f64,
    /// `Σ_{j ∈ SC-row(i), D=0} Z_j`.
    num_a: f64,
    /// `Σ_{j ∈ SC-row(i), D=1} Z_j`.
    num_f: f64,
}

/// Result of one scoped refit, reported back to the streaming layer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeltaRefitReport {
    /// EM iterations the scoped loop used.
    pub iterations: usize,
    /// Whether `max |Δθ| < tol` was reached.
    pub converged: bool,
    /// `max |Δθ|` from the refit's starting `θ` to its final `θ`.
    pub drift: f64,
    /// Worst-case staleness bound over every cached posterior, after
    /// this refit.
    pub divergence_bound: f64,
}

/// The incremental engine behind [`RefitMode::Delta`].
///
/// Owned by [`StreamingEstimator`](crate::StreamingEstimator); rebuilt
/// from scratch at every full refit and advanced in place by every
/// scoped one.
#[derive(Debug, Clone)]
pub(crate) struct DeltaEngine {
    cfg: DeltaConfig,
    theta: Theta,
    /// Posterior cache: `Z_j` as of assertion `j`'s last evaluation.
    posterior: Vec<f64>,
    /// Log-odds cache, same staleness as `posterior`.
    log_odds: Vec<f64>,
    /// Per-assertion observed-data log-likelihood terms (Eq. 7 summands),
    /// same staleness as `posterior`.
    ll_terms: Vec<f64>,
    /// Mutable adjacency mirror of the `SC`/`D` matrices (sorted ids).
    sc_rows: Vec<Vec<u32>>,
    sc_cols: Vec<Vec<u32>>,
    d_rows: Vec<Vec<u32>>,
    d_cols: Vec<Vec<u32>>,
    /// Incremental M-step statistics.
    sums: Vec<SourceSums>,
    sum_z: f64,
    /// `|SC-col(j) ∪ D-col(j)|` per column, kept exact across structure
    /// changes.
    col_entries: Vec<usize>,
    /// `max(col_entries)`, kept exact: max-updated on insertions and
    /// recomputed (compacted) whenever a column at the maximum shrinks,
    /// so removals tighten the staleness bound instead of leaving a
    /// stale upper bound behind.
    max_col_entries: usize,
    /// Total logit-shift accumulator `Λ`: every refit adds an upper
    /// bound on how far an *untouched* assertion's posterior log-odds
    /// can move under its `θ` update (see `refit_shift`).
    lambda: f64,
    /// `Λ` at each assertion's last evaluation; the staleness bound for
    /// `j` is `¼ · (Λ − stamp[j])`.
    stamp: Vec<f64>,
    /// `Σ` per-refit drift since the last full refit.
    acc_drift: f64,
    /// Claims ingested since the last full refit.
    claims_since_full: usize,
    /// Log size at the last full refit (the batch-fraction denominator).
    claims_at_full: usize,
    /// Exact log-likelihood computed at the end of the last scoped refit
    /// when [`DeltaConfig::exact_ll`] is on; `None` otherwise. Never
    /// persisted — every `fit()` call follows a `refit()` in the same
    /// dispatch, which recomputes it.
    last_exact_ll: Option<f64>,
}

impl DeltaEngine {
    /// Seeds an engine from a completed full fit over `data`.
    pub(crate) fn init(
        cfg: DeltaConfig,
        data: &ClaimData,
        fit: &EmFit,
        total_claims: usize,
    ) -> Self {
        let n = data.source_count();
        let m = data.assertion_count();
        let tables = LikelihoodTables::new(&fit.theta);
        let ln_z = safe_ln(fit.theta.z());
        let ln_1z = safe_ln_1m(fit.theta.z());
        let ll_terms: Vec<f64> = (0..m)
            .map(|j| {
                let (ln1, ln0) =
                    tables.column_log_likelihood(data.sc().col(j as u32), data.d().col(j as u32));
                log_sum_exp2(ln1 + ln_z, ln0 + ln_1z)
            })
            .collect();
        let sc_rows: Vec<Vec<u32>> = (0..n).map(|i| data.sc().row(i as u32).to_vec()).collect();
        let sc_cols: Vec<Vec<u32>> = (0..m).map(|j| data.sc().col(j as u32).to_vec()).collect();
        let d_rows: Vec<Vec<u32>> = (0..n).map(|i| data.d().row(i as u32).to_vec()).collect();
        let d_cols: Vec<Vec<u32>> = (0..m).map(|j| data.d().col(j as u32).to_vec()).collect();

        let mut sums = vec![SourceSums::default(); n];
        for (i, s) in sums.iter_mut().enumerate() {
            s.sc_cells = sc_rows[i].len();
            s.dep_cells = d_rows[i].len();
            for &j in &d_rows[i] {
                s.dep_z += fit.posterior[j as usize];
            }
            let mut dep_iter = d_rows[i].iter().peekable();
            for &j in &sc_rows[i] {
                while dep_iter.peek().is_some_and(|&&dj| dj < j) {
                    dep_iter.next();
                }
                let zj = fit.posterior[j as usize];
                if dep_iter.peek() == Some(&&j) {
                    s.sc_dep += 1;
                    s.num_f += zj;
                } else {
                    s.num_a += zj;
                }
            }
        }
        let sum_z: f64 = fit.posterior.iter().sum();
        let col_entries: Vec<usize> = (0..m).map(|j| union_len(&sc_cols[j], &d_cols[j])).collect();
        let max_col_entries = col_entries.iter().copied().max().unwrap_or(0);

        Self {
            cfg,
            theta: fit.theta.clone(),
            posterior: fit.posterior.clone(),
            log_odds: fit.log_odds.clone(),
            ll_terms,
            sc_rows,
            sc_cols,
            d_rows,
            d_cols,
            sums,
            sum_z,
            col_entries,
            max_col_entries,
            lambda: 0.0,
            stamp: vec![0.0; m],
            acc_drift: 0.0,
            claims_since_full: 0,
            claims_at_full: total_claims.max(1),
            last_exact_ll: None,
        }
    }

    /// Whether the chain must fall back to a full refit *before*
    /// attempting a scoped one, given `new_claims` arriving now.
    pub(crate) fn pre_trigger(&self, new_claims: usize) -> bool {
        let claims = self.claims_since_full + new_claims;
        self.acc_drift > self.cfg.max_drift
            || claims as f64 > self.cfg.max_batch_fraction * self.claims_at_full as f64
    }

    /// Worst-case bound on `|Z_j^cached − Z_j^fresh(θ_now)|` over every
    /// assertion, where `fresh` is a full E-step under the engine's
    /// current `θ` with the current `SC`/`D` structure.
    ///
    /// Derivation (DESIGN.md §10): the posterior is `σ(ℓ_j)` of the
    /// log-odds `ℓ_j`, and `|σ(x) − σ(y)| ≤ ¼ |x − y|`. Each refit's `θ`
    /// update moves any untouched `ℓ_j` by at most the refit's *shift*
    /// (see `refit_shift`), independent of `j`; shifts add along the
    /// chain, so `|ℓ_j(θ_now) − ℓ_j(θ_stamp(j))| ≤ Λ_now − Λ_stamp(j)`
    /// for every `j` whose structure is unchanged since its stamp —
    /// guaranteed, because structure changes force a column into the
    /// touched set.
    pub(crate) fn divergence_bound(&self) -> f64 {
        let min_stamp = self.stamp.iter().fold(f64::INFINITY, |acc, &s| acc.min(s));
        if min_stamp.is_finite() {
            0.25 * (self.lambda - min_stamp)
        } else {
            0.0
        }
    }

    /// Claims ingested since the engine was last seeded.
    #[cfg(test)]
    pub(crate) fn claims_since_full(&self) -> usize {
        self.claims_since_full
    }

    /// Accumulated per-refit drift since the engine was last seeded.
    pub(crate) fn accumulated_drift(&self) -> f64 {
        self.acc_drift
    }

    /// Folds a batch's cell-membership changes into the adjacency mirror
    /// and the incremental sums, using each changed cell's cached `Z_j`.
    /// Returns the sorted set of columns whose structure changed — the
    /// seed of the touched set.
    pub(crate) fn apply_structure_changes(
        &mut self,
        changes: &[socsense_graph::CellChange],
    ) -> Vec<u32> {
        let mut cols: Vec<u32> = Vec::with_capacity(changes.len());
        for ch in changes {
            let (i, j) = (ch.source as usize, ch.assertion as usize);
            let z = self.posterior[j];
            // Subtract the old membership's contributions...
            let s = &mut self.sums[i];
            if ch.before.claimed {
                s.sc_cells -= 1;
                if ch.before.dependent {
                    s.sc_dep -= 1;
                    s.num_f -= z;
                } else {
                    s.num_a -= z;
                }
            }
            if ch.before.dependent {
                s.dep_cells -= 1;
                s.dep_z -= z;
            }
            // ...and add the new membership's.
            if ch.after.claimed {
                s.sc_cells += 1;
                if ch.after.dependent {
                    s.sc_dep += 1;
                    s.num_f += z;
                } else {
                    s.num_a += z;
                }
            }
            if ch.after.dependent {
                s.dep_cells += 1;
                s.dep_z += z;
            }
            if ch.before.claimed != ch.after.claimed {
                toggle(&mut self.sc_rows[i], ch.assertion, ch.after.claimed);
                toggle(&mut self.sc_cols[j], ch.source, ch.after.claimed);
            }
            if ch.before.dependent != ch.after.dependent {
                toggle(&mut self.d_rows[i], ch.assertion, ch.after.dependent);
                toggle(&mut self.d_cols[j], ch.source, ch.after.dependent);
            }
            let entries = union_len(&self.sc_cols[j], &self.d_cols[j]);
            let before = self.col_entries[j];
            self.col_entries[j] = entries;
            if entries > self.max_col_entries {
                self.max_col_entries = entries;
            } else if entries < before && before == self.max_col_entries {
                // A column at the maximum shrank: compact instead of
                // carrying the stale upper bound into every future
                // `refit_shift` (ties at the old maximum survive the
                // rescan unchanged).
                self.max_col_entries = self.col_entries.iter().copied().max().unwrap_or(0);
            }
            cols.push(ch.assertion);
        }
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// The touched set for a batch: columns whose structure changed plus
    /// every assertion reachable through the batch sources' `SC` and `D`
    /// rows. Sorted and deduplicated, so the scoped E-step's evaluation
    /// order — and therefore its floating-point result — is independent
    /// of batch order and worker count.
    pub(crate) fn touched_set(&self, changed_cols: &[u32], batch_sources: &[u32]) -> Vec<u32> {
        let mut touched: Vec<u32> = changed_cols.to_vec();
        for &i in batch_sources {
            touched.extend_from_slice(&self.sc_rows[i as usize]);
            touched.extend_from_slice(&self.d_rows[i as usize]);
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// One scoped EM refit over `touched`, advancing `θ`, the caches,
    /// and the staleness accounting in place. `batch_sources` must be
    /// the sorted set of sources whose rows seeded `touched` — they are
    /// excluded from the staleness shift, because no column left
    /// untouched can contain one of their cells.
    ///
    /// Mirrors the full EM loop of `run_em_with` — E-step, M-step with
    /// hierarchical shrinkage, `max |Δθ| < tol` convergence, and a final
    /// cache pass under the final `θ` — except that the E-step touches
    /// only `touched` and the M-step reads the incremental sums.
    pub(crate) fn refit(
        &mut self,
        em: &EmConfig,
        touched: &[u32],
        batch_sources: &[u32],
        new_claims: usize,
    ) -> Result<DeltaRefitReport, SenseError> {
        let start = self.theta.clone();
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..em.max_iters {
            iterations += 1;
            self.scoped_e_step(em.parallelism, touched);
            let next = self.m_step(em);
            let delta = self.theta.max_abs_diff(&next)?;
            self.theta = next;
            if delta < em.tol {
                converged = true;
                break;
            }
        }
        // Final cache pass under the final θ (the full path recomputes
        // its posterior the same way after the loop exits).
        self.scoped_e_step(em.parallelism, touched);

        // Staleness accounting: the chain's logit-shift accumulator
        // grows by this refit's worst-case per-assertion shift, and the
        // assertions just re-evaluated stamp the new level.
        let drift = start.max_abs_diff(&self.theta)?;
        self.lambda += refit_shift(&start, &self.theta, batch_sources, self.max_col_entries);
        for &j in touched {
            self.stamp[j as usize] = self.lambda;
        }
        self.acc_drift += drift;
        self.claims_since_full += new_claims;

        // Optional amortised exact-ℓℓ refresh: one full pass under the
        // final θ, bit-identical to what the full path would report over
        // the same data (see `exact_log_likelihood`).
        self.last_exact_ll = if self.cfg.exact_ll {
            Some(self.exact_log_likelihood(em.parallelism))
        } else {
            None
        };

        Ok(DeltaRefitReport {
            iterations,
            converged,
            drift,
            divergence_bound: self.divergence_bound(),
        })
    }

    /// Assembles the fit served after a scoped refit.
    ///
    /// `posterior` / `log_odds` mix fresh (touched) and cached
    /// (bounded-stale) entries. Without [`DeltaConfig::exact_ll`],
    /// `log_likelihood` sums the per-assertion terms at each one's last
    /// evaluation, so it is approximate in the same bounded sense; with
    /// it, the refit's exact refresh is served instead. `ll_history`
    /// carries only that final value — a scoped refit never walks the
    /// whole log to reconstruct the trajectory.
    pub(crate) fn fit(&self, report: &DeltaRefitReport) -> EmFit {
        let log_likelihood: f64 = match self.last_exact_ll {
            Some(ll) => ll,
            None => self.ll_terms.iter().sum(),
        };
        EmFit {
            theta: self.theta.clone(),
            posterior: self.posterior.clone(),
            log_likelihood,
            iterations: report.iterations,
            converged: report.converged,
            ll_history: vec![log_likelihood],
            log_odds: self.log_odds.clone(),
        }
    }

    /// Serializes the complete engine state, floats as `to_bits` (see
    /// [`DeltaEngineState`](crate::state::DeltaEngineState)).
    pub(crate) fn export_state(&self) -> crate::state::DeltaEngineState {
        use crate::state::{bits_of, SourceSumsState, ThetaBits};
        crate::state::DeltaEngineState {
            cfg_max_drift: self.cfg.max_drift.to_bits(),
            cfg_max_batch_fraction: self.cfg.max_batch_fraction.to_bits(),
            cfg_max_divergence: self.cfg.max_divergence.to_bits(),
            cfg_exact_ll: self.cfg.exact_ll,
            theta: ThetaBits::from_theta(&self.theta),
            posterior: bits_of(&self.posterior),
            log_odds: bits_of(&self.log_odds),
            ll_terms: bits_of(&self.ll_terms),
            sc_rows: self.sc_rows.clone(),
            sc_cols: self.sc_cols.clone(),
            d_rows: self.d_rows.clone(),
            d_cols: self.d_cols.clone(),
            sums: self
                .sums
                .iter()
                .map(|s| SourceSumsState {
                    sc_cells: s.sc_cells,
                    sc_dep: s.sc_dep,
                    dep_cells: s.dep_cells,
                    dep_z: s.dep_z.to_bits(),
                    num_a: s.num_a.to_bits(),
                    num_f: s.num_f.to_bits(),
                })
                .collect(),
            sum_z: self.sum_z.to_bits(),
            col_entries: self.col_entries.clone(),
            max_col_entries: self.max_col_entries,
            lambda: self.lambda.to_bits(),
            stamp: bits_of(&self.stamp),
            acc_drift: self.acc_drift.to_bits(),
            claims_since_full: self.claims_since_full,
            claims_at_full: self.claims_at_full,
        }
    }

    /// Reconstructs an engine from serialized state, verbatim — every
    /// incrementally maintained float is restored from its bits rather
    /// than recomputed, so a restored engine's next refit is
    /// bit-identical to the uninterrupted one's.
    ///
    /// # Errors
    ///
    /// [`SenseError::BadConfig`] when the encoded `θ` or thresholds fail
    /// validation, or the vector shapes are inconsistent.
    pub(crate) fn from_state(
        state: &crate::state::DeltaEngineState,
        n: usize,
        m: usize,
    ) -> Result<Self, SenseError> {
        use crate::state::floats_of;
        let cfg = DeltaConfig {
            max_drift: f64::from_bits(state.cfg_max_drift),
            max_batch_fraction: f64::from_bits(state.cfg_max_batch_fraction),
            max_divergence: f64::from_bits(state.cfg_max_divergence),
            exact_ll: state.cfg_exact_ll,
        };
        cfg.validate()?;
        let theta = state.theta.to_theta()?;
        let shape_ok = theta.source_count() == n
            && state.posterior.len() == m
            && state.log_odds.len() == m
            && state.ll_terms.len() == m
            && state.sc_rows.len() == n
            && state.sc_cols.len() == m
            && state.d_rows.len() == n
            && state.d_cols.len() == m
            && state.sums.len() == n
            && state.col_entries.len() == m
            && state.stamp.len() == m;
        if !shape_ok {
            return Err(SenseError::BadConfig {
                what: "delta engine state: vector shapes inconsistent with n/m",
            });
        }
        Ok(Self {
            cfg,
            theta,
            posterior: floats_of(&state.posterior),
            log_odds: floats_of(&state.log_odds),
            ll_terms: floats_of(&state.ll_terms),
            sc_rows: state.sc_rows.clone(),
            sc_cols: state.sc_cols.clone(),
            d_rows: state.d_rows.clone(),
            d_cols: state.d_cols.clone(),
            sums: state
                .sums
                .iter()
                .map(|s| SourceSums {
                    sc_cells: s.sc_cells,
                    sc_dep: s.sc_dep,
                    dep_cells: s.dep_cells,
                    dep_z: f64::from_bits(s.dep_z),
                    num_a: f64::from_bits(s.num_a),
                    num_f: f64::from_bits(s.num_f),
                })
                .collect(),
            sum_z: f64::from_bits(state.sum_z),
            col_entries: state.col_entries.clone(),
            max_col_entries: state.max_col_entries,
            lambda: f64::from_bits(state.lambda),
            stamp: floats_of(&state.stamp),
            acc_drift: f64::from_bits(state.acc_drift),
            claims_since_full: state.claims_since_full,
            claims_at_full: state.claims_at_full,
            last_exact_ll: None,
        })
    }

    /// The exact observed-data log-likelihood (Eq. 7) of the engine's
    /// current adjacency mirror under its current `θ`.
    ///
    /// Replicates `data_log_likelihood_with` exactly — same kernel, same
    /// fixed-chunk `par_map_reduce` fold — so the result is bit-identical
    /// to what the full warm path would report over the same data, at
    /// every parallelism level.
    fn exact_log_likelihood(&self, par: Parallelism) -> f64 {
        let tables = LikelihoodTables::new(&self.theta);
        let ln_z = safe_ln(self.theta.z());
        let ln_1z = safe_ln_1m(self.theta.z());
        par_map_reduce(
            par,
            self.posterior.len(),
            0.0,
            |range| {
                let mut sum = 0.0;
                for j in range {
                    let (ln1, ln0) =
                        tables.column_log_likelihood(&self.sc_cols[j], &self.d_cols[j]);
                    sum += log_sum_exp2(ln1 + ln_z, ln0 + ln_1z);
                }
                sum
            },
            |a, b| a + b,
        )
    }

    /// Re-evaluates `Z_j` (and the log-odds / log-likelihood caches) for
    /// every touched assertion under the current `θ`, flowing each `ΔZ_j`
    /// into the incremental sums.
    ///
    /// Evaluation parallelises over the sorted touched list with the
    /// fixed-chunk helpers, and the (order-sensitive) sum updates apply
    /// serially in that same order — `Serial` ≡ `Threads(n)` bit for bit.
    fn scoped_e_step(&mut self, par: Parallelism, touched: &[u32]) {
        let tables = LikelihoodTables::new(&self.theta);
        let ln_z = safe_ln(self.theta.z());
        let ln_1z = safe_ln_1m(self.theta.z());
        let evals: Vec<(f64, f64)> = par_map_collect(par, touched.len(), |k| {
            let j = touched[k] as usize;
            tables.column_log_likelihood(&self.sc_cols[j], &self.d_cols[j])
        });
        for (k, (ln1, ln0)) in evals.into_iter().enumerate() {
            let j = touched[k] as usize;
            let (w1, w0) = (ln1 + ln_z, ln0 + ln_1z);
            let z_new = normalize_log_pair(w1, w0).0;
            let z_old = self.posterior[j];
            let dz = z_new - z_old;
            if dz != 0.0 {
                self.sum_z += dz;
                for &i in &self.d_cols[j] {
                    self.sums[i as usize].dep_z += dz;
                }
                let mut dep_iter = self.d_cols[j].iter().peekable();
                for &i in &self.sc_cols[j] {
                    while dep_iter.peek().is_some_and(|&&di| di < i) {
                        dep_iter.next();
                    }
                    let s = &mut self.sums[i as usize];
                    if dep_iter.peek() == Some(&&i) {
                        s.num_f += dz;
                    } else {
                        s.num_a += dz;
                    }
                }
                self.posterior[j] = z_new;
            }
            self.log_odds[j] = w1 - w0;
            self.ll_terms[j] = log_sum_exp2(w1, w0);
        }
    }

    /// The dependency-split M-step (Eqs. 24–28) from the incremental
    /// sums — same formula, population shrinkage, degenerate-denominator
    /// fallback, and clamping as the full path's M-step, at `O(n)`.
    fn m_step(&self, em: &EmConfig) -> Theta {
        let n = self.sums.len();
        let m = self.posterior.len() as f64;
        let sum_y = m - self.sum_z;
        let mut next = self.theta.clone();
        let counts: Vec<[f64; 8]> = self
            .sums
            .iter()
            .map(|s| {
                let dep_y = s.dep_cells as f64 - s.dep_z;
                let num_b = (s.sc_cells - s.sc_dep) as f64 - s.num_a;
                let num_g = s.sc_dep as f64 - s.num_f;
                [
                    s.num_a,
                    self.sum_z - s.dep_z,
                    num_b,
                    sum_y - dep_y,
                    s.num_f,
                    s.dep_z,
                    num_g,
                    dep_y,
                ]
            })
            .collect();
        let mut pop = [0.0f64; 8];
        for c in &counts {
            for (p, v) in pop.iter_mut().zip(c) {
                *p += v;
            }
        }
        let pop_rate = |k: usize| {
            if pop[2 * k + 1] > 1e-12 {
                pop[2 * k] / pop[2 * k + 1]
            } else {
                0.5
            }
        };
        let pop_rates = [pop_rate(0), pop_rate(1), pop_rate(2), pop_rate(3)];
        let s = em.smoothing;
        for (i, c) in counts.iter().enumerate().take(n) {
            let prev = *self.theta.source(i);
            let fallback = [prev.a, prev.b, prev.f, prev.g];
            let mut vals = [0.0f64; 4];
            for k in 0..4 {
                let (num, den) = (c[2 * k], c[2 * k + 1]);
                vals[k] = if den + s > 1e-12 {
                    (num + s * pop_rates[k]) / (den + s)
                } else {
                    fallback[k]
                };
            }
            next.set_source(
                i,
                SourceParams {
                    a: vals[0],
                    b: vals[1],
                    f: vals[2],
                    g: vals[3],
                },
            );
        }
        next.set_z(self.sum_z / m);
        next.clamp_in_place(em.eps);
        next
    }
}

/// Inserts (`present`) or removes id `v` in a sorted id list.
fn toggle(list: &mut Vec<u32>, v: u32, present: bool) {
    match list.binary_search(&v) {
        Ok(pos) if !present => {
            list.remove(pos);
        }
        Err(pos) if present => {
            list.insert(pos, v);
        }
        _ => {}
    }
}

/// Number of distinct ids in the union of two sorted id lists.
fn union_len(a: &[u32], b: &[u32]) -> usize {
    let (mut x, mut y, mut count) = (0usize, 0usize, 0usize);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                x += 1;
                y += 1;
            }
        }
        count += 1;
    }
    count + (a.len() - x) + (b.len() - y)
}

/// The structure-independent part of every column's posterior log-odds:
/// `G(θ) = (ln z − ln(1−z)) + (base1 − base0)` with
/// `base1 = Σ_i ln(1−a_i)`, `base0 = Σ_i ln(1−b_i)` — exactly the
/// all-silent log-odds the sparse-correction kernel starts from.
fn global_log_odds(theta: &Theta) -> f64 {
    let mut g = safe_ln(theta.z()) - safe_ln_1m(theta.z());
    for s in theta.sources() {
        g += safe_ln_1m(s.a) - safe_ln_1m(s.b);
    }
    g
}

/// Worst movement of source `i`'s per-entry log-odds correction between
/// two `θ`s, over the three ways a cell can enter a column:
///
/// * dependent silent cell: `(ln(1−f) − ln(1−a)) − (ln(1−g) − ln(1−b))`
/// * independent claim:     `(ln a − ln(1−a)) − (ln b − ln(1−b))`
/// * dependent claim:       `(ln f − ln(1−a)) − (ln g − ln(1−b))`
fn entry_shift(p: &SourceParams, q: &SourceParams) -> f64 {
    let corr = |s: &SourceParams| {
        let (l1a, l1b) = (safe_ln_1m(s.a), safe_ln_1m(s.b));
        [
            (safe_ln_1m(s.f) - l1a) - (safe_ln_1m(s.g) - l1b),
            (safe_ln(s.a) - l1a) - (safe_ln(s.b) - l1b),
            (safe_ln(s.f) - l1a) - (safe_ln(s.g) - l1b),
        ]
    };
    let (cp, cq) = (corr(p), corr(q));
    (0..3).fold(0.0f64, |acc, k| acc.max((cq[k] - cp[k]).abs()))
}

/// Upper bound on `|ℓ_j(after) − ℓ_j(before)|` over every assertion `j`
/// left *untouched* by the refit whose `θ` update this is.
///
/// With the sparse-correction kernel,
/// `ℓ_j = G(θ) + Σ_{i ∈ entries(j)} corr_i(θ)` where `entries(j)` is the
/// union of `SC`/`D` column `j` and `corr_i` depends only on source `i`
/// and the (fixed, for untouched `j`) cell kind. So
///
/// `|Δℓ_j| ≤ |ΔG| + Σ_{i ∈ entries(j)} |Δcorr_i|
///         ≤ |ΔG| + max_col_entries · max_i |Δcorr_i|`,
///
/// with the max over sources that can appear in an untouched column —
/// every column holding a cell of a batch source is in the touched set,
/// so `excluded` (the sorted batch sources) drop out of the max. `ΔG` is
/// differenced exactly; summing worst cases over all `n` sources (the
/// naive bound) would grow with `n` and trip the fallback on every
/// refit.
fn refit_shift(before: &Theta, after: &Theta, excluded: &[u32], max_col_entries: usize) -> f64 {
    let global = (global_log_odds(after) - global_log_odds(before)).abs();
    let mut worst_entry = 0.0f64;
    for i in 0..before.source_count() {
        if excluded.binary_search(&(i as u32)).is_ok() {
            continue;
        }
        worst_entry = worst_entry.max(entry_shift(before.source(i), after.source(i)));
    }
    global + max_col_entries as f64 * worst_entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::EmExt;
    use crate::likelihood::assertion_posteriors;
    use socsense_graph::{ClaimLogIndex, FollowerGraph, TimedClaim};

    fn world() -> (FollowerGraph, Vec<TimedClaim>) {
        let mut g = FollowerGraph::new(6);
        g.add_follow(3, 0);
        g.add_follow(4, 1);
        let mut claims = Vec::new();
        let mut t = 0u64;
        for round in 0..8u64 {
            for i in 0..6u32 {
                let honest = i < 4;
                let j = ((round as u32 * 7 + i * 3) % 10 + if honest { 0 } else { 10 }) % 12;
                t += 1;
                claims.push(TimedClaim::new(i, j, t));
            }
        }
        (g, claims)
    }

    fn engine_for(claims: &[TimedClaim], graph: &FollowerGraph) -> (DeltaEngine, ClaimData) {
        let data = ClaimData::from_claims(6, 12, claims, graph);
        let fit = EmExt::new(EmConfig::default()).fit(&data).unwrap();
        let engine = DeltaEngine::init(DeltaConfig::default(), &data, &fit, claims.len());
        (engine, data)
    }

    /// The incremental sums after a chain of structure changes and
    /// E-steps must equal a fresh accumulation from the caches.
    fn assert_sums_consistent(e: &DeltaEngine) {
        let fresh_sum_z: f64 = e.posterior.iter().sum();
        assert!((e.sum_z - fresh_sum_z).abs() < 1e-9, "sum_z drifted");
        for (i, s) in e.sums.iter().enumerate() {
            assert_eq!(s.sc_cells, e.sc_rows[i].len());
            assert_eq!(s.dep_cells, e.d_rows[i].len());
            let dep_z: f64 = e.d_rows[i].iter().map(|&j| e.posterior[j as usize]).sum();
            assert!((s.dep_z - dep_z).abs() < 1e-9, "dep_z drifted at {i}");
            let mut num_a = 0.0;
            let mut num_f = 0.0;
            let mut sc_dep = 0usize;
            for &j in &e.sc_rows[i] {
                let z = e.posterior[j as usize];
                if e.d_rows[i].binary_search(&j).is_ok() {
                    sc_dep += 1;
                    num_f += z;
                } else {
                    num_a += z;
                }
            }
            assert_eq!(s.sc_dep, sc_dep);
            assert!((s.num_a - num_a).abs() < 1e-9, "num_a drifted at {i}");
            assert!((s.num_f - num_f).abs() < 1e-9, "num_f drifted at {i}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "scoped refit runs full EM setup, too slow under Miri")]
    fn init_sums_match_fresh_accumulation() {
        let (g, claims) = world();
        let (engine, _) = engine_for(&claims, &g);
        assert_sums_consistent(&engine);
        assert_eq!(engine.divergence_bound(), 0.0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "scoped refit runs full EM setup, too slow under Miri")]
    fn structure_changes_keep_sums_and_adjacency_consistent() {
        let (g, claims) = world();
        let (mut engine, _) = engine_for(&claims, &g);
        let mut index = ClaimLogIndex::new(6, 12);
        index.ingest(&g, &claims);
        // New claims, including one creating a dependent cell.
        let batch = [
            TimedClaim::new(5, 6, 1000),
            TimedClaim::new(0, 11, 1001),
            TimedClaim::new(3, 11, 1002), // follower of 0: dependent repeat
        ];
        let changes = index.ingest(&g, &batch);
        assert!(!changes.is_empty());
        let cols = engine.apply_structure_changes(&changes);
        assert!(cols.contains(&6) && cols.contains(&11));
        assert_sums_consistent(&engine);
        // Adjacency mirror must agree with a fresh matrix build.
        let (sc, d) = index.build();
        for i in 0..6u32 {
            assert_eq!(engine.sc_rows[i as usize], sc.row(i), "sc row {i}");
            assert_eq!(engine.d_rows[i as usize], d.row(i), "d row {i}");
        }
        for j in 0..12u32 {
            assert_eq!(engine.sc_cols[j as usize], sc.col(j), "sc col {j}");
            assert_eq!(engine.d_cols[j as usize], d.col(j), "d col {j}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "scoped refit runs full EM setup, too slow under Miri")]
    fn scoped_refit_advances_and_reports_staleness() {
        let (g, claims) = world();
        let (mut engine, _) = engine_for(&claims, &g);
        let mut index = ClaimLogIndex::new(6, 12);
        index.ingest(&g, &claims);
        let batch = [TimedClaim::new(1, 3, 500), TimedClaim::new(2, 7, 501)];
        let changes = index.ingest(&g, &batch);
        let cols = engine.apply_structure_changes(&changes);
        let touched = engine.touched_set(&cols, &[1, 2]);
        assert!(!touched.is_empty());
        let report = engine
            .refit(&EmConfig::default(), &touched, &[1, 2], batch.len())
            .unwrap();
        assert!(report.iterations >= 1);
        assert!(report.divergence_bound >= 0.0);
        assert_eq!(engine.claims_since_full(), 2);
        assert!(engine.accumulated_drift() >= 0.0);
        assert_sums_consistent(&engine);
        // The cached posteriors of untouched assertions must sit within
        // the proven bound of a fresh E-step under the current θ.
        let data = {
            let (sc, d) = index.build();
            ClaimData::new(sc, d).unwrap()
        };
        let fresh = assertion_posteriors(&data, &engine.theta).unwrap();
        for (j, fresh_z) in fresh.iter().enumerate().take(12) {
            let bound = 0.25 * (engine.lambda - engine.stamp[j]) + 1e-12;
            assert!(
                (engine.posterior[j] - fresh_z).abs() <= bound,
                "assertion {j}: cached {} vs fresh {fresh_z} exceeds bound {bound}",
                engine.posterior[j],
            );
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "scoped refit runs full EM setup, too slow under Miri")]
    fn touched_posteriors_match_a_fresh_e_step_exactly() {
        // A touched assertion is evaluated under the final θ with the
        // same kernel the full E-step uses, so it must agree bit for bit
        // with a fresh evaluation under that θ.
        let (g, claims) = world();
        let (mut engine, _) = engine_for(&claims, &g);
        let mut index = ClaimLogIndex::new(6, 12);
        index.ingest(&g, &claims);
        let batch = [TimedClaim::new(0, 5, 700)];
        let changes = index.ingest(&g, &batch);
        let cols = engine.apply_structure_changes(&changes);
        let touched = engine.touched_set(&cols, &[0]);
        engine
            .refit(&EmConfig::default(), &touched, &[0], batch.len())
            .unwrap();
        let data = {
            let (sc, d) = index.build();
            ClaimData::new(sc, d).unwrap()
        };
        let fresh = assertion_posteriors(&data, &engine.theta).unwrap();
        for &j in &touched {
            assert_eq!(
                engine.posterior[j as usize].to_bits(),
                fresh[j as usize].to_bits(),
                "assertion {j}"
            );
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "scoped refit runs full EM setup, too slow under Miri")]
    fn scoped_refit_is_parallelism_invariant() {
        let (g, claims) = world();
        let run = |par: Parallelism| {
            let (mut engine, _) = engine_for(&claims, &g);
            let mut index = ClaimLogIndex::new(6, 12);
            index.ingest(&g, &claims);
            let batch = [TimedClaim::new(4, 1, 900), TimedClaim::new(5, 9, 901)];
            let changes = index.ingest(&g, &batch);
            let cols = engine.apply_structure_changes(&changes);
            let touched = engine.touched_set(&cols, &[4, 5]);
            let em = EmConfig {
                parallelism: par,
                ..EmConfig::default()
            };
            engine.refit(&em, &touched, &[4, 5], batch.len()).unwrap();
            engine
                .posterior
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>()
        };
        let serial = run(Parallelism::Serial);
        for par in [
            Parallelism::Threads(1),
            Parallelism::Threads(2),
            Parallelism::Threads(4),
        ] {
            assert_eq!(serial, run(par), "{par:?}");
        }
    }

    #[test]
    fn pre_trigger_tracks_thresholds() {
        let (g, claims) = world();
        let (mut engine, _) = engine_for(&claims, &g);
        engine.cfg = DeltaConfig {
            max_batch_fraction: 0.0,
            ..DeltaConfig::default()
        };
        assert!(engine.pre_trigger(1), "zero fraction trips on any batch");
        assert!(!engine.pre_trigger(0));
        engine.cfg = DeltaConfig::default();
        assert!(!engine.pre_trigger(1));
        engine.acc_drift = 1.0;
        assert!(engine.pre_trigger(0), "drift past the cap must trip");
    }

    #[test]
    fn refit_shift_is_zero_on_identical_thetas_and_positive_otherwise() {
        let t = Theta::neutral(4);
        assert_eq!(refit_shift(&t, &t, &[], 5), 0.0);
        let mut u = t.clone();
        u.set_source(2, SourceParams::new(0.7, 0.2, 0.6, 0.5).unwrap());
        assert!(refit_shift(&t, &u, &[], 5) > 0.0);
        assert_eq!(
            refit_shift(&t, &u, &[], 5).to_bits(),
            refit_shift(&u, &t, &[], 5).to_bits()
        );
        // Excluding the only moved source leaves just the (exact)
        // global part, which a single source's `1−a`/`1−b` change drives.
        let only_global = refit_shift(&t, &u, &[2], 5);
        assert!(only_global < refit_shift(&t, &u, &[], 5));
        // More possible entries per column can only widen the bound.
        assert!(refit_shift(&t, &u, &[], 10) >= refit_shift(&t, &u, &[], 5));
    }

    #[test]
    fn union_len_counts_distinct_ids() {
        assert_eq!(union_len(&[], &[]), 0);
        assert_eq!(union_len(&[1, 3, 5], &[]), 3);
        assert_eq!(union_len(&[1, 3, 5], &[3, 4]), 4);
        assert_eq!(union_len(&[2], &[2]), 1);
    }

    #[test]
    fn delta_config_validation() {
        assert!(DeltaConfig::default().validate().is_ok());
        for bad in [f64::NAN, f64::INFINITY, -0.1] {
            assert!(matches!(
                DeltaConfig {
                    max_drift: bad,
                    ..DeltaConfig::default()
                }
                .validate(),
                Err(SenseError::BadConfig { .. })
            ));
        }
    }

    /// Synthetic removal changes for every cell of one column, matching
    /// the engine's current state so the incremental sums stay exact.
    fn remove_column_cells(e: &DeltaEngine, j: u32) -> Vec<socsense_graph::CellChange> {
        let mut sources: Vec<u32> = e.sc_cols[j as usize].clone();
        sources.extend_from_slice(&e.d_cols[j as usize]);
        sources.sort_unstable();
        sources.dedup();
        sources
            .into_iter()
            .map(|i| socsense_graph::CellChange {
                source: i,
                assertion: j,
                before: socsense_graph::CellState {
                    claimed: e.sc_cols[j as usize].binary_search(&i).is_ok(),
                    dependent: e.d_cols[j as usize].binary_search(&i).is_ok(),
                },
                after: socsense_graph::CellState {
                    claimed: false,
                    dependent: false,
                },
            })
            .collect()
    }

    #[test]
    fn removals_compact_max_col_entries() {
        let (g, claims) = world();
        let (mut engine, _) = engine_for(&claims, &g);
        let exact_max = |e: &DeltaEngine| {
            (0..12)
                .map(|j| union_len(&e.sc_cols[j], &e.d_cols[j]))
                .max()
                .unwrap()
        };
        assert_eq!(engine.max_col_entries, exact_max(&engine), "exact at seed");
        // Empty out every column sitting at the maximum (they may tie):
        // the bound must compact to the true new maximum, not keep the
        // stale one.
        let before = engine.max_col_entries;
        let widest: Vec<u32> = (0..12u32)
            .filter(|&j| {
                union_len(&engine.sc_cols[j as usize], &engine.d_cols[j as usize]) == before
            })
            .collect();
        let mut changes = Vec::new();
        for &j in &widest {
            changes.extend(remove_column_cells(&engine, j));
        }
        assert!(!changes.is_empty());
        engine.apply_structure_changes(&changes);
        assert_sums_consistent(&engine);
        assert_eq!(engine.max_col_entries, exact_max(&engine), "compacted");
        assert!(
            engine.max_col_entries < before,
            "removing the widest column must tighten the bound \
             ({before} -> {})",
            engine.max_col_entries
        );
        // Re-inserting cells max-updates back up.
        let reinsert: Vec<socsense_graph::CellChange> = changes
            .iter()
            .map(|ch| socsense_graph::CellChange {
                before: ch.after,
                after: ch.before,
                ..*ch
            })
            .collect();
        engine.apply_structure_changes(&reinsert);
        assert_eq!(engine.max_col_entries, before);
        assert_sums_consistent(&engine);
    }

    #[test]
    #[cfg_attr(miri, ignore = "scoped refit runs full EM setup, too slow under Miri")]
    fn staleness_bound_still_holds_after_removal_compaction() {
        let (g, claims) = world();
        let (mut engine, _) = engine_for(&claims, &g);
        let widest = (0..12u32)
            .max_by_key(|&j| union_len(&engine.sc_cols[j as usize], &engine.d_cols[j as usize]))
            .unwrap();
        let removals = remove_column_cells(&engine, widest);
        let mut sources: Vec<u32> = removals.iter().map(|ch| ch.source).collect();
        sources.sort_unstable();
        sources.dedup();
        let cols = engine.apply_structure_changes(&removals);
        let touched = engine.touched_set(&cols, &sources);
        engine
            .refit(&EmConfig::default(), &touched, &sources, 0)
            .unwrap();
        assert_sums_consistent(&engine);
        // Rebuild the data the engine now mirrors and check every cached
        // posterior against the proven (now tighter) staleness bound.
        let entries = |rows: &[Vec<u32>]| -> Vec<(u32, u32)> {
            rows.iter()
                .enumerate()
                .flat_map(|(i, r)| r.iter().map(move |&j| (i as u32, j)))
                .collect()
        };
        let sc = socsense_matrix::SparseBinaryMatrix::from_entries(6, 12, entries(&engine.sc_rows));
        let d = socsense_matrix::SparseBinaryMatrix::from_entries(6, 12, entries(&engine.d_rows));
        let data = ClaimData::new(sc, d).unwrap();
        let fresh = assertion_posteriors(&data, &engine.theta).unwrap();
        for (j, fresh_z) in fresh.iter().enumerate() {
            let bound = 0.25 * (engine.lambda - engine.stamp[j]) + 1e-12;
            assert!(
                (engine.posterior[j] - fresh_z).abs() <= bound,
                "assertion {j}: cached {} vs fresh {fresh_z} exceeds bound {bound}",
                engine.posterior[j],
            );
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "scoped refit runs full EM setup, too slow under Miri")]
    fn exact_ll_refresh_matches_full_evaluation_bitwise() {
        // With `exact_ll` on, the ℓℓ a scoped refit serves must be
        // bit-identical to `data_log_likelihood_with` over the same data
        // under the final θ — the full path's exact value.
        let (g, claims) = world();
        let (mut engine, _) = engine_for(&claims, &g);
        engine.cfg.exact_ll = true;
        let mut index = ClaimLogIndex::new(6, 12);
        index.ingest(&g, &claims);
        let batch = [TimedClaim::new(1, 3, 500), TimedClaim::new(2, 7, 501)];
        let changes = index.ingest(&g, &batch);
        let cols = engine.apply_structure_changes(&changes);
        let touched = engine.touched_set(&cols, &[1, 2]);
        let em = EmConfig::default();
        let report = engine.refit(&em, &touched, &[1, 2], batch.len()).unwrap();
        let fit = engine.fit(&report);
        let data = {
            let (sc, d) = index.build();
            ClaimData::new(sc, d).unwrap()
        };
        let exact =
            crate::likelihood::data_log_likelihood_with(&data, &engine.theta, em.parallelism)
                .unwrap();
        assert_eq!(fit.log_likelihood.to_bits(), exact.to_bits());
        assert_eq!(fit.ll_history, vec![exact]);
    }

    #[test]
    #[cfg_attr(miri, ignore = "scoped refit runs full EM setup, too slow under Miri")]
    fn exact_ll_refresh_is_parallelism_invariant() {
        let (g, claims) = world();
        let run = |par: Parallelism| {
            let (mut engine, _) = engine_for(&claims, &g);
            engine.cfg.exact_ll = true;
            let mut index = ClaimLogIndex::new(6, 12);
            index.ingest(&g, &claims);
            let batch = [TimedClaim::new(0, 2, 800)];
            let changes = index.ingest(&g, &batch);
            let cols = engine.apply_structure_changes(&changes);
            let touched = engine.touched_set(&cols, &[0]);
            let em = EmConfig {
                parallelism: par,
                ..EmConfig::default()
            };
            let report = engine.refit(&em, &touched, &[0], batch.len()).unwrap();
            engine.fit(&report).log_likelihood.to_bits()
        };
        let serial = run(Parallelism::Serial);
        for par in [Parallelism::Threads(2), Parallelism::Threads(4)] {
            assert_eq!(serial, run(par), "{par:?}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "scoped refit runs full EM setup, too slow under Miri")]
    fn engine_state_round_trip_preserves_refit_bitwise() {
        // Export → (JSON) → restore must reproduce the next scoped refit
        // bit for bit: posteriors, served ℓℓ, and the staleness chain.
        let (g, claims) = world();
        let (engine, _) = engine_for(&claims, &g);
        let state = engine.export_state();
        let json = serde_json::to_string(&state).unwrap();
        let decoded: crate::state::DeltaEngineState = serde_json::from_str(&json).unwrap();
        assert_eq!(decoded, state, "JSON round trip must be lossless");
        let restored = DeltaEngine::from_state(&decoded, 6, 12).unwrap();
        let run = |mut e: DeltaEngine| {
            let mut index = ClaimLogIndex::new(6, 12);
            index.ingest(&g, &claims);
            let batch = [TimedClaim::new(4, 1, 900), TimedClaim::new(5, 9, 901)];
            let changes = index.ingest(&g, &batch);
            let cols = e.apply_structure_changes(&changes);
            let touched = e.touched_set(&cols, &[4, 5]);
            let report = e
                .refit(&EmConfig::default(), &touched, &[4, 5], batch.len())
                .unwrap();
            let fit = e.fit(&report);
            (
                fit.posterior
                    .iter()
                    .map(|p| p.to_bits())
                    .collect::<Vec<_>>(),
                fit.log_likelihood.to_bits(),
                e.lambda.to_bits(),
                e.stamp.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(engine), run(restored));
    }

    #[test]
    fn engine_state_rejects_inconsistent_shapes() {
        let (g, claims) = world();
        let (engine, _) = engine_for(&claims, &g);
        let state = engine.export_state();
        assert!(DeltaEngine::from_state(&state, 6, 11).is_err());
        assert!(DeltaEngine::from_state(&state, 5, 12).is_err());
        let mut bad = state.clone();
        bad.stamp.pop();
        assert!(DeltaEngine::from_state(&bad, 6, 12).is_err());
    }

    #[test]
    fn toggle_inserts_and_removes_sorted() {
        let mut v = vec![2, 5, 9];
        toggle(&mut v, 5, false);
        assert_eq!(v, vec![2, 9]);
        toggle(&mut v, 4, true);
        assert_eq!(v, vec![2, 4, 9]);
        // No-ops when already in the requested state.
        toggle(&mut v, 4, true);
        toggle(&mut v, 5, false);
        assert_eq!(v, vec![2, 4, 9]);
    }
}
