//! Bit-exact serializable state for durable streaming (WAL snapshots).
//!
//! The serve layer's durability contract (DESIGN.md §12) is that a
//! worker restored from a snapshot answers every query
//! `f64::to_bits`-identically to the uninterrupted worker. JSON float
//! round-trips cannot guarantee that (and the vendored `serde_json`
//! maps non-finite floats to `null`), so every `f64` in these types is
//! encoded as its [`f64::to_bits`] `u64` — lossless by construction,
//! non-finite-safe, and stable across platforms.
//!
//! The types mirror, field for field, the in-memory state they persist:
//! a snapshot is *self-contained* — restoring onto a freshly constructed
//! [`StreamingEstimator`](crate::StreamingEstimator) (same `n`, `m`,
//! graph, and config) reproduces the exact warm-start chain, delta
//! engine, and pending-buffer state, including every incrementally
//! maintained float sum verbatim (recomputing those would differ in the
//! last bits and break the determinism proof).

use serde::{Deserialize, Serialize};
use socsense_graph::{CellChange, TimedClaim};

use crate::error::SenseError;
use crate::model::{SourceParams, Theta};
use crate::EmFit;

/// A [`Theta`] with every float as `to_bits`: the truth prior `z` plus
/// `4n` per-source values in row-major `a, b, f, g` order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThetaBits {
    /// `z.to_bits()`.
    pub z: u64,
    /// `a, b, f, g` bits per source, concatenated.
    pub sources: Vec<u64>,
}

impl ThetaBits {
    /// Encodes a parameter vector.
    pub fn from_theta(theta: &Theta) -> Self {
        let mut sources = Vec::with_capacity(4 * theta.source_count());
        for s in theta.sources() {
            sources.extend_from_slice(&[
                s.a.to_bits(),
                s.b.to_bits(),
                s.f.to_bits(),
                s.g.to_bits(),
            ]);
        }
        Self {
            z: theta.z().to_bits(),
            sources,
        }
    }

    /// Decodes back into a validated [`Theta`].
    ///
    /// # Errors
    ///
    /// [`SenseError::BadConfig`] when the source vector length is not a
    /// multiple of four, plus whatever [`Theta::new`] rejects (empty,
    /// out-of-range probabilities — e.g. corrupted bits).
    pub fn to_theta(&self) -> Result<Theta, SenseError> {
        if !self.sources.len().is_multiple_of(4) {
            return Err(SenseError::BadConfig {
                what: "theta bits: source vector length must be a multiple of 4",
            });
        }
        let sources: Vec<SourceParams> = self
            .sources
            .chunks_exact(4)
            .map(|c| {
                SourceParams::new(
                    f64::from_bits(c[0]),
                    f64::from_bits(c[1]),
                    f64::from_bits(c[2]),
                    f64::from_bits(c[3]),
                )
            })
            .collect::<Result<_, _>>()?;
        Theta::new(sources, f64::from_bits(self.z))
    }
}

/// An [`EmFit`] with every float as `to_bits`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmFitBits {
    /// The fitted parameters.
    pub theta: ThetaBits,
    /// Per-assertion posterior bits.
    pub posterior: Vec<u64>,
    /// `log_likelihood.to_bits()`.
    pub log_likelihood: u64,
    /// EM iterations used.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Log-likelihood trajectory bits.
    pub ll_history: Vec<u64>,
    /// Per-assertion posterior log-odds bits.
    pub log_odds: Vec<u64>,
}

impl EmFitBits {
    /// Encodes a fit.
    pub fn from_fit(fit: &EmFit) -> Self {
        Self {
            theta: ThetaBits::from_theta(&fit.theta),
            posterior: bits_of(&fit.posterior),
            log_likelihood: fit.log_likelihood.to_bits(),
            iterations: fit.iterations,
            converged: fit.converged,
            ll_history: bits_of(&fit.ll_history),
            log_odds: bits_of(&fit.log_odds),
        }
    }

    /// Decodes back into an [`EmFit`].
    ///
    /// # Errors
    ///
    /// As [`ThetaBits::to_theta`].
    pub fn to_fit(&self) -> Result<EmFit, SenseError> {
        Ok(EmFit {
            theta: self.theta.to_theta()?,
            posterior: floats_of(&self.posterior),
            log_likelihood: f64::from_bits(self.log_likelihood),
            iterations: self.iterations,
            converged: self.converged,
            ll_history: floats_of(&self.ll_history),
            log_odds: floats_of(&self.log_odds),
        })
    }
}

/// One source's incremental M-step sufficient statistics
/// (`DeltaEngine`'s `SourceSums`), floats as bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceSumsState {
    /// `|SC-row(i)|`.
    pub(crate) sc_cells: usize,
    /// `|SC-row(i) ∩ D-row(i)|`.
    pub(crate) sc_dep: usize,
    /// `|D-row(i)|`.
    pub(crate) dep_cells: usize,
    /// `Σ_{j ∈ D-row(i)} Z_j`, as bits.
    pub(crate) dep_z: u64,
    /// `Σ_{j ∈ SC-row(i), D=0} Z_j`, as bits.
    pub(crate) num_a: u64,
    /// `Σ_{j ∈ SC-row(i), D=1} Z_j`, as bits.
    pub(crate) num_f: u64,
}

/// The complete delta-engine state (`DeltaEngine`), floats as bits.
///
/// Everything is persisted verbatim — including the incrementally
/// maintained sums, the staleness accumulator `Λ`, and the per-column
/// stamps — because those values depend on the exact refit history and
/// cannot be recomputed bit-identically from the claim log alone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaEngineState {
    /// `DeltaConfig::max_drift` bits.
    pub(crate) cfg_max_drift: u64,
    /// `DeltaConfig::max_batch_fraction` bits.
    pub(crate) cfg_max_batch_fraction: u64,
    /// `DeltaConfig::max_divergence` bits.
    pub(crate) cfg_max_divergence: u64,
    /// `DeltaConfig::exact_ll`.
    pub(crate) cfg_exact_ll: bool,
    /// Current `θ`.
    pub(crate) theta: ThetaBits,
    /// Posterior cache bits.
    pub(crate) posterior: Vec<u64>,
    /// Log-odds cache bits.
    pub(crate) log_odds: Vec<u64>,
    /// Per-assertion log-likelihood term bits.
    pub(crate) ll_terms: Vec<u64>,
    /// `SC` adjacency mirror, rows.
    pub(crate) sc_rows: Vec<Vec<u32>>,
    /// `SC` adjacency mirror, columns.
    pub(crate) sc_cols: Vec<Vec<u32>>,
    /// `D` adjacency mirror, rows.
    pub(crate) d_rows: Vec<Vec<u32>>,
    /// `D` adjacency mirror, columns.
    pub(crate) d_cols: Vec<Vec<u32>>,
    /// Incremental M-step statistics.
    pub(crate) sums: Vec<SourceSumsState>,
    /// `Σ_j Z_j` bits.
    pub(crate) sum_z: u64,
    /// `|SC-col ∪ D-col|` per column.
    pub(crate) col_entries: Vec<usize>,
    /// `max(col_entries)`.
    pub(crate) max_col_entries: usize,
    /// Staleness accumulator `Λ` bits.
    pub(crate) lambda: u64,
    /// Per-column `Λ` stamp bits.
    pub(crate) stamp: Vec<u64>,
    /// Accumulated drift bits.
    pub(crate) acc_drift: u64,
    /// Claims since the last full refit.
    pub(crate) claims_since_full: usize,
    /// Log size at the last full refit.
    pub(crate) claims_at_full: usize,
}

/// The complete [`StreamingEstimator`](crate::StreamingEstimator) state
/// for one snapshot: the full claim log plus the warm-start chain and
/// pending buffers.
///
/// Self-contained by design: the claim log is carried whole, so a
/// snapshot alone (no WAL prefix) reconstructs the estimator; the WAL
/// tail then replays only batches *after* the snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamingState {
    /// Source count the estimator was built over.
    pub n: u32,
    /// Assertion count the estimator was built over.
    pub m: u32,
    /// The full claim log, in ingest order.
    pub claims: Vec<TimedClaim>,
    /// Warm-start seed bits (`None` before the first successful refit).
    pub last_theta: Option<ThetaBits>,
    /// Claims ingested since the warm chain last advanced.
    pub pending: usize,
    /// Delta engine, when the estimator runs in delta mode and has been
    /// seeded.
    pub engine: Option<DeltaEngineState>,
    /// Cell-membership changes not yet folded into the engine.
    pub pending_changes: Vec<CellChange>,
    /// Batch sources not yet folded into the engine (sorted set).
    pub pending_sources: Vec<u32>,
}

/// `to_bits` of a float slice.
pub(crate) fn bits_of(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// `from_bits` of a bits slice.
pub(crate) fn floats_of(v: &[u64]) -> Vec<f64> {
    v.iter().map(|&b| f64::from_bits(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_bits_round_trip_is_exact() {
        let mut theta = Theta::neutral(3);
        theta.set_z(0.1 + 0.2); // deliberately not representable "nicely"
        theta.set_source(1, SourceParams::new(0.7, 0.2, 0.6, 0.5).unwrap());
        let bits = ThetaBits::from_theta(&theta);
        let back = bits.to_theta().unwrap();
        assert_eq!(back.z().to_bits(), theta.z().to_bits());
        for i in 0..3 {
            let (a, b) = (theta.source(i), back.source(i));
            assert_eq!(a.a.to_bits(), b.a.to_bits());
            assert_eq!(a.b.to_bits(), b.b.to_bits());
            assert_eq!(a.f.to_bits(), b.f.to_bits());
            assert_eq!(a.g.to_bits(), b.g.to_bits());
        }
    }

    #[test]
    fn theta_bits_reject_ragged_sources() {
        let bits = ThetaBits {
            z: 0.5f64.to_bits(),
            sources: vec![0, 0, 0],
        };
        assert!(matches!(bits.to_theta(), Err(SenseError::BadConfig { .. })));
    }

    #[test]
    fn theta_bits_reject_corrupted_probability() {
        let mut bits = ThetaBits::from_theta(&Theta::neutral(2));
        bits.sources[0] = 2.5f64.to_bits();
        assert!(bits.to_theta().is_err());
    }

    #[test]
    fn em_fit_bits_round_trip_preserves_non_finite() {
        let fit = EmFit {
            theta: Theta::neutral(2),
            posterior: vec![0.25, 1.0],
            log_likelihood: f64::NEG_INFINITY,
            iterations: 7,
            converged: false,
            ll_history: vec![-3.0, f64::NEG_INFINITY],
            log_odds: vec![f64::INFINITY, -0.5],
        };
        let back = EmFitBits::from_fit(&fit).to_fit().unwrap();
        assert_eq!(
            back.log_likelihood.to_bits(),
            fit.log_likelihood.to_bits(),
            "JSON-null-unsafe value must survive the bits encoding"
        );
        assert_eq!(bits_of(&back.log_odds), bits_of(&fit.log_odds));
        assert_eq!(bits_of(&back.ll_history), bits_of(&fit.ll_history));
        assert_eq!(back.iterations, 7);
        assert!(!back.converged);
    }

    #[test]
    fn state_json_round_trip_via_serde() {
        // The serve layer ships these types through serde_json; pin that
        // the derive round-trips bit-exactly end to end.
        let fit = EmFit {
            theta: Theta::neutral(2),
            posterior: vec![0.1 + 0.2],
            log_likelihood: -1.5,
            iterations: 1,
            converged: true,
            ll_history: vec![-1.5],
            log_odds: vec![0.0],
        };
        let bits = EmFitBits::from_fit(&fit);
        let json = serde_json::to_string(&bits).unwrap();
        let back: EmFitBits = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bits);
    }
}
