//! Streaming (recursive) truth estimation over a growing claim log.
//!
//! The paper's related work points to recursive estimators for social
//! *data streams* (Yao et al., IPSN 2016): during a live event claims
//! arrive continuously, and refitting EM from scratch on every batch
//! wastes work because the parameter estimate moves slowly once enough
//! data has accumulated. [`StreamingEstimator`] keeps the claim log, the
//! follow relation, and the last `θ̂`; each [`estimate`] call rebuilds the
//! (cheap, sparse) `SC`/`D` matrices and **warm-starts** EM from the
//! previous parameters via [`EmExt::fit_warm`], typically converging in a
//! handful of iterations.
//!
//! [`estimate`]: StreamingEstimator::estimate

use std::collections::BTreeSet;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use socsense_graph::{CellChange, ClaimLogIndex, FollowerGraph, TimedClaim};
use socsense_obs::Obs;

use crate::data::ClaimData;
use crate::delta::{DeltaConfig, DeltaEngine, RefitMode, RefitOutcome};
use crate::em::{EmConfig, EmExt, EmFit};
use crate::error::SenseError;
use crate::model::Theta;
use crate::state::{StreamingState, ThetaBits};

/// Incremental fact-finder over a growing claim stream.
///
/// # Example
///
/// ```
/// use socsense_core::{EmConfig, StreamingEstimator};
/// use socsense_graph::{FollowerGraph, TimedClaim};
///
/// let mut g = FollowerGraph::new(3);
/// g.add_follow(2, 0);
/// let mut est = StreamingEstimator::new(3, 2, g, EmConfig::default())?;
///
/// est.ingest(&[TimedClaim::new(0, 0, 1), TimedClaim::new(1, 0, 2)])?;
/// let first = est.estimate()?;
///
/// est.ingest(&[TimedClaim::new(2, 0, 3)])?; // a dependent repeat arrives
/// let second = est.estimate()?;
/// assert_eq!(second.posterior.len(), 2);
/// # let _ = first;
/// # Ok::<(), socsense_core::SenseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingEstimator {
    n: u32,
    m: u32,
    graph: FollowerGraph,
    config: EmConfig,
    mode: RefitMode,
    claims: Vec<TimedClaim>,
    /// Incrementally maintained earliest-claim index: rebuilds the
    /// `SC`/`D` pair in `O(nnz)` (never re-walking the claim log) and
    /// reports which cells each batch changed.
    log_index: ClaimLogIndex,
    last_theta: Option<Theta>,
    /// Claims ingested since the last [`estimate`](Self::estimate).
    pending: usize,
    warm_blend: f64,
    /// `SC`/`D` built from the current log, keyed on the claim count it
    /// was built at (`None` until the first [`snapshot`](Self::snapshot)
    /// after an ingest). Long-lived readers issuing many queries between
    /// batches share one build.
    snapshot_cache: Option<(usize, Arc<ClaimData>)>,
    /// The delta refit engine, present in [`RefitMode::Delta`] once the
    /// first (full) refit has seeded it.
    engine: Option<DeltaEngine>,
    /// Cell-membership changes since the last committed refit, not yet
    /// folded into the engine.
    pending_changes: Vec<CellChange>,
    /// Sources that claimed since the last committed refit.
    pending_sources: BTreeSet<u32>,
    obs: Obs,
}

/// Statistics about one incremental refit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefitStats {
    /// EM iterations this refit used.
    pub iterations: usize,
    /// Whether the refit was warm-started from a previous `θ̂`.
    pub warm: bool,
    /// Total claims in the log after the refit.
    pub total_claims: usize,
    /// Which code path served the refit: a full EM, a scoped delta
    /// refit, or a delta chain falling back to the full path.
    pub mode: RefitOutcome,
    /// Assertions whose posterior this refit re-evaluated (`m` for the
    /// full paths).
    pub touched_assertions: usize,
    /// Sources whose statistics this refit touched (`n` for the full
    /// paths).
    pub touched_sources: usize,
    /// Whether the fit's `log_likelihood` is the exact observed-data
    /// value. Always `true` for the full paths (including fallbacks); a
    /// scoped delta refit serves a bounded-stale sum unless
    /// [`DeltaConfig::exact_ll`] requests the amortised exact refresh.
    #[serde(default)]
    pub ll_exact: bool,
}

impl StreamingEstimator {
    /// Creates an estimator over `n` sources and `m` assertions with the
    /// given follow relation.
    ///
    /// # Errors
    ///
    /// Returns [`SenseError::EmptyData`] when `n == 0` or `m == 0`, and
    /// [`SenseError::DimensionMismatch`] when the graph covers a
    /// different number of sources.
    pub fn new(n: u32, m: u32, graph: FollowerGraph, config: EmConfig) -> Result<Self, SenseError> {
        if n == 0 || m == 0 {
            return Err(SenseError::EmptyData);
        }
        if graph.node_count() != n {
            return Err(SenseError::DimensionMismatch {
                what: "follower graph node count vs n",
                expected: n as usize,
                actual: graph.node_count() as usize,
            });
        }
        Ok(Self {
            n,
            m,
            graph,
            config,
            mode: RefitMode::Full,
            claims: Vec::new(),
            log_index: ClaimLogIndex::new(n, m),
            last_theta: None,
            pending: 0,
            warm_blend: 0.5,
            snapshot_cache: None,
            engine: None,
            pending_changes: Vec::new(),
            pending_sources: BTreeSet::new(),
            obs: Obs::none(),
        })
    }

    /// Selects how subsequent refits run (see [`RefitMode`]).
    ///
    /// Switching modes — including replacing one [`DeltaConfig`] with
    /// another — discards any delta engine state, so the next refit runs
    /// the full path (and, in delta mode, re-seeds the engine from it).
    /// The claim log and warm-start state are kept.
    ///
    /// # Errors
    ///
    /// Returns [`SenseError::BadConfig`] when a [`DeltaConfig`]
    /// threshold is negative or not finite.
    pub fn set_refit_mode(&mut self, mode: RefitMode) -> Result<(), SenseError> {
        if let RefitMode::Delta(cfg) = &mode {
            cfg.validate()?;
        }
        self.mode = mode;
        self.engine = None;
        self.pending_changes.clear();
        self.pending_sources.clear();
        Ok(())
    }

    /// The active refit mode.
    pub fn refit_mode(&self) -> RefitMode {
        self.mode
    }

    /// Attaches a metrics handle; refits then report `stream.*` metrics
    /// (warm/cold refit counts, iteration histograms, wall time) and
    /// forward the handle into the inner [`EmExt`] so its `em.*`
    /// convergence metrics land in the same sink. Observation-only:
    /// fits are bit-identical with or without a sink.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Number of sources this estimator covers.
    pub fn source_count(&self) -> u32 {
        self.n
    }

    /// Number of assertions this estimator covers.
    pub fn assertion_count(&self) -> u32 {
        self.m
    }

    /// The follow relation the dependency indicators are derived from.
    pub fn graph(&self) -> &FollowerGraph {
        &self.graph
    }

    /// The active EM configuration.
    pub fn config(&self) -> &EmConfig {
        &self.config
    }

    /// Replaces the EM configuration used by subsequent refits.
    ///
    /// The claim log, warm-start state, and cached snapshot are all kept;
    /// configuration errors surface from the next refit (exactly as they
    /// would from [`EmExt::fit`]), and — unlike on older revisions — a
    /// refit that fails on a bad configuration leaves the warm-start
    /// state intact.
    pub fn set_config(&mut self, config: EmConfig) {
        self.config = config;
    }

    /// The warm-start parameters from the last successful refit, if any.
    pub fn last_theta(&self) -> Option<&Theta> {
        self.last_theta.as_ref()
    }

    /// Sets how strongly refits lean on the previous `θ̂`.
    ///
    /// The warm start used by [`estimate`](Self::estimate) is the convex
    /// blend `warm_blend · θ̂_prev + (1 - warm_blend) · anchor`, where the
    /// anchor is the deterministic data-driven initialisation on the
    /// *current* log ([`EmExt::data_driven_start`]). `1.0` is a pure warm
    /// start (fastest, but an unlucky basin from a thin early prefix can
    /// lock in — streams often deliver biased prefixes); `0.0` refits
    /// cold every time. The default `0.5` keeps most of the iteration
    /// saving while letting the anchor pull the fit back.
    ///
    /// # Errors
    ///
    /// Returns [`SenseError::BadConfig`] when outside `[0, 1]`.
    pub fn set_warm_blend(&mut self, warm_blend: f64) -> Result<(), SenseError> {
        if !(0.0..=1.0).contains(&warm_blend) || !warm_blend.is_finite() {
            return Err(SenseError::BadConfig {
                what: "warm_blend must be within [0, 1]",
            });
        }
        self.warm_blend = warm_blend;
        Ok(())
    }

    /// Appends a batch of claims to the log.
    ///
    /// # Errors
    ///
    /// Returns [`SenseError::DimensionMismatch`] if a claim references an
    /// out-of-range source or assertion; the batch is then rejected
    /// atomically.
    pub fn ingest(&mut self, batch: &[TimedClaim]) -> Result<(), SenseError> {
        for c in batch {
            if c.source >= self.n {
                return Err(SenseError::DimensionMismatch {
                    what: "claim source id vs n",
                    expected: self.n as usize,
                    actual: c.source as usize,
                });
            }
            if c.assertion >= self.m {
                return Err(SenseError::DimensionMismatch {
                    what: "claim assertion id vs m",
                    expected: self.m as usize,
                    actual: c.assertion as usize,
                });
            }
        }
        self.claims.extend_from_slice(batch);
        // The index ingest shares build_matrices' bounds contract; the
        // loop above already guaranteed it cannot panic here.
        let changes = self.log_index.ingest(&self.graph, batch);
        if matches!(self.mode, RefitMode::Delta(_)) && self.engine.is_some() {
            self.pending_changes.extend(changes);
            self.pending_sources.extend(batch.iter().map(|c| c.source));
        }
        self.pending += batch.len();
        self.obs
            .counter("stream.ingest.claims_total", batch.len() as u64);
        Ok(())
    }

    /// Number of claims ingested so far.
    pub fn claim_count(&self) -> usize {
        self.claims.len()
    }

    /// Claims ingested since the last [`estimate`](Self::estimate).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The current `SC`/`D` snapshot.
    ///
    /// The snapshot is cached keyed on the claim count and invalidated by
    /// [`ingest`](Self::ingest): between batches, repeated calls (every
    /// query of a serving layer goes through here) return the same `Arc`.
    /// A rebuild after an ingest materialises the matrices from the
    /// incrementally maintained claim-log index — `O(nnz)`, never
    /// re-walking the whole log — and is structurally identical to a
    /// fresh [`ClaimData::from_claims`] build (regression-tested).
    pub fn snapshot(&mut self) -> Arc<ClaimData> {
        match &self.snapshot_cache {
            Some((at, data)) if *at == self.claims.len() => Arc::clone(data),
            _ => {
                let (sc, d) = self.log_index.build();
                let data = Arc::new(ClaimData::from_parts(sc, d));
                self.snapshot_cache = Some((self.claims.len(), Arc::clone(&data)));
                data
            }
        }
    }

    /// Refits on everything ingested so far, warm-starting from the
    /// previous estimate when one exists.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn estimate(&mut self) -> Result<EmFit, SenseError> {
        let (fit, _) = self.estimate_with_stats()?;
        Ok(fit)
    }

    /// As [`estimate`](Self::estimate), also reporting refit statistics.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn estimate_with_stats(&mut self) -> Result<(EmFit, RefitStats), SenseError> {
        // The refit is fallible (a bad configuration, for instance), so
        // the warm-start state and pending counter mutate only *after* it
        // succeeds: a failed refit must not demote later refits to cold.
        let (fit, stats) = self.refit_once()?;
        self.last_theta = Some(fit.theta.clone());
        self.pending = 0;
        self.pending_changes.clear();
        self.pending_sources.clear();
        Ok((fit, stats))
    }

    /// Refits on everything ingested so far — the same fit
    /// [`estimate`](Self::estimate) would produce — **without** advancing
    /// the warm-start state or clearing the pending counter.
    ///
    /// This is the serving layer's freshness primitive: a query-triggered
    /// refit computed this way is a pure function of the claim log and
    /// the last *successful* [`estimate`](Self::estimate), so answering
    /// queries never perturbs the warm-start trajectory and the served
    /// numbers cannot depend on query timing (see `socsense-serve`).
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn peek_estimate(&mut self) -> Result<(EmFit, RefitStats), SenseError> {
        // In delta mode a refit advances the engine in place; peeking
        // runs the identical computation on a transient copy and puts
        // the original back, so peeks stay stateless and reproducible.
        let saved = self.engine.clone();
        let result = self.refit_once();
        self.engine = saved;
        result
    }

    /// One refit, dispatched by [`RefitMode`]. Advances the delta engine
    /// (when one is active) but never the warm-start state or pending
    /// buffers — those commit in
    /// [`estimate_with_stats`](Self::estimate_with_stats) only.
    fn refit_once(&mut self) -> Result<(EmFit, RefitStats), SenseError> {
        let RefitMode::Delta(dcfg) = self.mode else {
            return self.refit_full(RefitOutcome::Full);
        };
        // Validate before touching any incremental state: a failed refit
        // must leave the warm-start state *and* the engine intact.
        EmExt::new(self.config).check_config()?;
        match self.engine.take() {
            // First refit of the chain: run full to seed the engine.
            None => self.full_and_seed(dcfg, RefitOutcome::Full),
            Some(engine) if engine.pre_trigger(self.pending) => {
                self.full_and_seed(dcfg, RefitOutcome::Fallback)
            }
            Some(mut engine) => {
                let timer = self.obs.timer("stream.refit.seconds");
                let changed = engine.apply_structure_changes(&self.pending_changes);
                let mut sources: BTreeSet<u32> = self.pending_sources.clone();
                sources.extend(self.pending_changes.iter().map(|c| c.source));
                let sources: Vec<u32> = sources.into_iter().collect();
                let touched = engine.touched_set(&changed, &sources);
                let report = engine.refit(&self.config, &touched, &sources, self.pending)?;
                if report.divergence_bound > dcfg.max_divergence {
                    // Post-hoc trigger: the staleness bound crossed the
                    // cap, so discard the scoped work (the taken engine
                    // drops here) and serve the full warm path instead.
                    return self.full_and_seed(dcfg, RefitOutcome::Fallback);
                }
                let fit = engine.fit(&report);
                let stats = RefitStats {
                    iterations: report.iterations,
                    warm: true,
                    total_claims: self.claims.len(),
                    mode: RefitOutcome::Delta,
                    touched_assertions: touched.len(),
                    touched_sources: sources.len(),
                    ll_exact: dcfg.exact_ll,
                };
                if self.obs.enabled() {
                    self.obs.counter("stream.refits_total", 1);
                    self.obs.counter("stream.refit.delta_total", 1);
                    self.obs
                        .observe("stream.refit.iterations", report.iterations as f64);
                    self.obs
                        .observe("stream.delta.touched_assertions", touched.len() as f64);
                    self.obs
                        .observe("stream.delta.touched_sources", sources.len() as f64);
                    self.obs.observe("stream.delta.drift", report.drift);
                    self.obs
                        .gauge("stream.delta.divergence_bound", report.divergence_bound);
                    self.obs
                        .gauge("stream.delta.accumulated_drift", engine.accumulated_drift());
                    self.obs.gauge("stream.claims", self.claims.len() as f64);
                    timer.stop();
                }
                self.engine = Some(engine);
                Ok((fit, stats))
            }
        }
    }

    /// Runs the full path and (re)seeds the delta engine from its fit.
    fn full_and_seed(
        &mut self,
        dcfg: DeltaConfig,
        outcome: RefitOutcome,
    ) -> Result<(EmFit, RefitStats), SenseError> {
        let (fit, stats) = self.refit_full(outcome)?;
        let data = self.snapshot();
        self.engine = Some(DeltaEngine::init(dcfg, &data, &fit, self.claims.len()));
        if outcome == RefitOutcome::Fallback {
            self.obs.counter("stream.delta.fallbacks_total", 1);
        }
        Ok((fit, stats))
    }

    /// One full refit over the current log: warm-started from the
    /// blended previous `θ̂` when one exists, cold otherwise. Touches no
    /// state beyond the snapshot cache. This is the code path every
    /// delta fallback re-enters, which is what makes fallback fits
    /// bit-identical to [`RefitMode::Full`] fits.
    fn refit_full(&mut self, outcome: RefitOutcome) -> Result<(EmFit, RefitStats), SenseError> {
        let timer = self.obs.timer("stream.refit.seconds");
        let data = self.snapshot();
        let em = EmExt::new(self.config).with_obs(self.obs.clone());
        let (fit, warm) = match self.last_theta.as_ref() {
            Some(prev) => {
                let anchor = em.data_driven_start(&data);
                let start = blend_theta(prev, &anchor, self.warm_blend);
                (em.fit_warm(&data, start)?, true)
            }
            None => (em.fit(&data)?, false),
        };
        let stats = RefitStats {
            iterations: fit.iterations,
            warm,
            total_claims: self.claims.len(),
            mode: outcome,
            touched_assertions: self.m as usize,
            touched_sources: self.n as usize,
            ll_exact: true,
        };
        if self.obs.enabled() {
            self.obs.counter("stream.refits_total", 1);
            let kind = if warm {
                "stream.refit.warm_total"
            } else {
                "stream.refit.cold_total"
            };
            self.obs.counter(kind, 1);
            self.obs
                .observe("stream.refit.iterations", fit.iterations as f64);
            self.obs.gauge("stream.claims", self.claims.len() as f64);
            timer.stop();
        }
        Ok((fit, stats))
    }

    /// Drops the warm-start state, forcing the next refit to start cold
    /// (useful after a suspected regime change in the stream). Any delta
    /// engine is dropped with it — its `θ` is exactly the state being
    /// disowned — so the next refit runs full and re-seeds.
    pub fn reset_warm_start(&mut self) {
        self.last_theta = None;
        self.engine = None;
        self.pending_changes.clear();
        self.pending_sources.clear();
    }

    /// Serializes the complete estimator state for a durability snapshot
    /// (see [`StreamingState`]): the full claim log, the warm-start
    /// chain, any delta engine, and the pending buffers — everything
    /// [`restore_state`](Self::restore_state) needs to reproduce this
    /// estimator bit for bit.
    pub fn export_state(&self) -> StreamingState {
        StreamingState {
            n: self.n,
            m: self.m,
            claims: self.claims.clone(),
            last_theta: self.last_theta.as_ref().map(ThetaBits::from_theta),
            pending: self.pending,
            engine: self.engine.as_ref().map(DeltaEngine::export_state),
            pending_changes: self.pending_changes.clone(),
            pending_sources: self.pending_sources.iter().copied().collect(),
        }
    }

    /// Restores a snapshot onto this estimator, which must be freshly
    /// constructed (no claims ingested) over the same `n`, `m`, graph,
    /// and configuration as the estimator the snapshot was exported
    /// from.
    ///
    /// The claim log replays through the normal ingest path (rebuilding
    /// the claim-log index), and every float of the warm-start chain and
    /// delta engine is installed verbatim from its bits — so the
    /// restored estimator's subsequent refits and queries are
    /// `f64::to_bits`-identical to the uninterrupted estimator's.
    ///
    /// # Errors
    ///
    /// [`SenseError::BadConfig`] when this estimator already holds
    /// claims, the shapes disagree, or the snapshot carries a delta
    /// engine while this estimator is not in delta mode (a configuration
    /// mismatch that would silently change served numbers);
    /// [`SenseError::DimensionMismatch`] when a snapshot claim is out of
    /// range.
    pub fn restore_state(&mut self, state: &StreamingState) -> Result<(), SenseError> {
        if !self.claims.is_empty() || self.pending != 0 {
            return Err(SenseError::BadConfig {
                what: "restore_state requires a freshly constructed estimator",
            });
        }
        if state.n != self.n || state.m != self.m {
            return Err(SenseError::BadConfig {
                what: "streaming state shape does not match this estimator",
            });
        }
        if state.engine.is_some() && !matches!(self.mode, RefitMode::Delta(_)) {
            return Err(SenseError::BadConfig {
                what: "snapshot carries a delta engine but the estimator is not in delta mode",
            });
        }
        let engine = state
            .engine
            .as_ref()
            .map(|e| DeltaEngine::from_state(e, self.n as usize, self.m as usize))
            .transpose()?;
        let last_theta = state
            .last_theta
            .as_ref()
            .map(ThetaBits::to_theta)
            .transpose()?;
        // Replay the whole log as one batch: the claim-log index is
        // batching-invariant, and with no engine installed yet the
        // replay records no pending changes (the snapshot's own pending
        // buffers are installed verbatim below).
        self.ingest(&state.claims)?;
        self.last_theta = last_theta;
        self.engine = engine;
        self.pending = state.pending;
        self.pending_changes = state.pending_changes.clone();
        self.pending_sources = state.pending_sources.iter().copied().collect();
        self.snapshot_cache = None;
        Ok(())
    }
}

/// Per-parameter convex combination `w·prev + (1-w)·anchor`.
fn blend_theta(prev: &Theta, anchor: &Theta, w: f64) -> Theta {
    let mut out = anchor.clone();
    let mix = |a: f64, b: f64| w * a + (1.0 - w) * b;
    for i in 0..prev.source_count() {
        let p = prev.source(i);
        let q = anchor.source(i);
        out.set_source(
            i,
            crate::model::SourceParams {
                a: mix(p.a, q.a),
                b: mix(p.b, q.b),
                f: mix(p.f, q.f),
                g: mix(p.g, q.g),
            },
        );
    }
    out.set_z(mix(prev.z(), anchor.z()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A reliable/unreliable two-camp world streamed in batches.
    fn stream_batches(
        batches: usize,
        per_batch: usize,
    ) -> (FollowerGraph, Vec<Vec<TimedClaim>>, Vec<bool>) {
        let n = 10u32;
        let m = 20u32;
        let truth: Vec<bool> = (0..m).map(|j| j < 12).collect();
        let mut rng = StdRng::seed_from_u64(31);
        let graph = FollowerGraph::new(n);
        let mut t = 0u64;
        let out = (0..batches)
            .map(|_| {
                (0..per_batch)
                    .map(|_| {
                        let s = rng.gen_range(0..n);
                        // Sources 0..7 honest, 8..9 liars.
                        let honest = s < 8;
                        let j = loop {
                            let j = rng.gen_range(0..m);
                            if truth[j as usize] == honest {
                                break j;
                            }
                        };
                        t += 1;
                        TimedClaim::new(s, j, t)
                    })
                    .collect()
            })
            .collect();
        (graph, out, truth)
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn warm_start_converges_faster_than_cold() {
        let (graph, batches, _) = stream_batches(4, 40);
        let mut est = StreamingEstimator::new(10, 20, graph.clone(), EmConfig::default()).unwrap();
        let mut warm_iters = Vec::new();
        let mut all: Vec<TimedClaim> = Vec::new();
        let mut cold_iters = Vec::new();
        for batch in &batches {
            est.ingest(batch).unwrap();
            let (_, stats) = est.estimate_with_stats().unwrap();
            warm_iters.push(stats.iterations);
            // Cold baseline on the same prefix.
            all.extend_from_slice(batch);
            let data = ClaimData::from_claims(10, 20, &all, &graph);
            let cold = EmExt::new(EmConfig::default()).fit(&data).unwrap();
            cold_iters.push(cold.iterations);
        }
        // After the first batch, warm refits use (weakly) fewer iterations.
        let warm_total: usize = warm_iters[1..].iter().sum();
        let cold_total: usize = cold_iters[1..].iter().sum();
        assert!(
            warm_total <= cold_total,
            "warm {warm_iters:?} vs cold {cold_iters:?}"
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn streaming_matches_batch_posterior_at_the_end() {
        let (graph, batches, truth) = stream_batches(3, 60);
        let mut est = StreamingEstimator::new(10, 20, graph.clone(), EmConfig::default()).unwrap();
        let mut all = Vec::new();
        for batch in &batches {
            est.ingest(batch).unwrap();
            all.extend_from_slice(batch);
        }
        let streamed = est.estimate().unwrap();
        let data = ClaimData::from_claims(10, 20, &all, &graph);
        let batch_fit = EmExt::new(EmConfig::default()).fit(&data).unwrap();
        // Same data, both converged: labels agree with ground truth and
        // with each other.
        let lab_s: Vec<bool> = streamed.posterior.iter().map(|&p| p > 0.5).collect();
        let lab_b: Vec<bool> = batch_fit.posterior.iter().map(|&p| p > 0.5).collect();
        assert_eq!(lab_s, lab_b);
        assert_eq!(lab_s, truth);
    }

    #[test]
    fn ingest_validates_ids_atomically() {
        let mut est =
            StreamingEstimator::new(3, 2, FollowerGraph::new(3), EmConfig::default()).unwrap();
        let bad = [TimedClaim::new(0, 0, 1), TimedClaim::new(9, 0, 2)];
        assert!(est.ingest(&bad).is_err());
        assert_eq!(est.claim_count(), 0, "batch must be rejected atomically");
        assert!(est.ingest(&[TimedClaim::new(0, 1, 1)]).is_ok());
        assert_eq!(est.pending(), 1);
    }

    #[test]
    fn construction_validates_shape() {
        assert!(matches!(
            StreamingEstimator::new(0, 5, FollowerGraph::new(0), EmConfig::default()),
            Err(SenseError::EmptyData)
        ));
        assert!(matches!(
            StreamingEstimator::new(3, 5, FollowerGraph::new(4), EmConfig::default()),
            Err(SenseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn reset_forces_cold_refit() {
        let (graph, batches, _) = stream_batches(2, 30);
        let mut est = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        est.ingest(&batches[0]).unwrap();
        let (_, s1) = est.estimate_with_stats().unwrap();
        assert!(!s1.warm);
        est.ingest(&batches[1]).unwrap();
        est.reset_warm_start();
        let (_, s2) = est.estimate_with_stats().unwrap();
        assert!(!s2.warm, "reset should force a cold start");
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn failed_refit_preserves_warm_state() {
        let (graph, batches, _) = stream_batches(3, 30);
        let mut est = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        est.ingest(&batches[0]).unwrap();
        let (_, s1) = est.estimate_with_stats().unwrap();
        assert!(!s1.warm);
        est.ingest(&batches[1]).unwrap();
        // Inject a refit failure: a zero iteration budget is rejected by
        // EM before any work happens.
        est.set_config(EmConfig {
            max_iters: 0,
            ..EmConfig::default()
        });
        assert!(matches!(
            est.estimate_with_stats(),
            Err(SenseError::BadConfig { .. })
        ));
        assert_eq!(
            est.pending(),
            batches[1].len(),
            "failed refit must not consume pending claims"
        );
        assert!(
            est.last_theta().is_some(),
            "failed refit must not drop the warm-start state"
        );
        est.set_config(EmConfig::default());
        let (_, s2) = est.estimate_with_stats().unwrap();
        assert!(s2.warm, "the next successful refit must still be warm");
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn snapshot_is_cached_until_new_claims_arrive() {
        let (graph, batches, _) = stream_batches(2, 20);
        let mut est = StreamingEstimator::new(10, 20, graph.clone(), EmConfig::default()).unwrap();
        est.ingest(&batches[0]).unwrap();
        let a = est.snapshot();
        let b = est.snapshot();
        assert!(Arc::ptr_eq(&a, &b), "no ingest between calls: same build");
        est.ingest(&batches[1]).unwrap();
        let c = est.snapshot();
        assert!(!Arc::ptr_eq(&a, &c), "ingest must invalidate the cache");
        let mut all = batches[0].clone();
        all.extend_from_slice(&batches[1]);
        assert_eq!(*c, ClaimData::from_claims(10, 20, &all, &graph));
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn peek_estimate_is_stateless_and_matches_estimate() {
        let (graph, batches, _) = stream_batches(2, 30);
        let mut est = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        est.ingest(&batches[0]).unwrap();
        est.estimate().unwrap();
        est.ingest(&batches[1]).unwrap();
        let pending = est.pending();
        let (peek_a, sa) = est.peek_estimate().unwrap();
        let (peek_b, _) = est.peek_estimate().unwrap();
        assert_eq!(est.pending(), pending, "peek must not consume pending");
        let bits = |fit: &EmFit| {
            fit.posterior
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&peek_a), bits(&peek_b), "peeks are reproducible");
        let theta_before = est.last_theta().cloned();
        let (fit, sb) = est.estimate_with_stats().unwrap();
        assert_eq!(est.pending(), 0);
        assert_eq!(bits(&peek_a), bits(&fit), "peek = the estimate it previews");
        assert_eq!(sa.warm, sb.warm);
        assert_ne!(
            theta_before.unwrap().max_abs_diff(&fit.theta).unwrap(),
            0.0,
            "estimate advances the warm state peeks left untouched"
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn metrics_record_warm_and_cold_refits_without_changing_fits() {
        let (graph, batches, _) = stream_batches(2, 30);
        let mut plain =
            StreamingEstimator::new(10, 20, graph.clone(), EmConfig::default()).unwrap();
        let mut traced = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        let (obs, rec) = Obs::recorder();
        traced.set_obs(obs);

        let bits = |fit: &EmFit| {
            fit.posterior
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>()
        };
        for batch in &batches {
            plain.ingest(batch).unwrap();
            traced.ingest(batch).unwrap();
            let a = plain.estimate().unwrap();
            let b = traced.estimate().unwrap();
            assert_eq!(bits(&a), bits(&b), "recorder must not perturb the fit");
        }

        let snap = rec.snapshot();
        assert_eq!(snap.counter("stream.refits_total"), 2);
        assert_eq!(snap.counter("stream.refit.cold_total"), 1);
        assert_eq!(snap.counter("stream.refit.warm_total"), 1);
        assert_eq!(snap.counter("stream.ingest.claims_total"), 60);
        assert_eq!(snap.gauge("stream.claims"), Some(60.0));
        assert_eq!(snap.histogram("stream.refit.iterations").unwrap().count, 2);
        assert_eq!(snap.histogram("stream.refit.seconds").unwrap().count, 2);
        // The estimator forwards its handle into EM, so convergence
        // metrics land in the same sink.
        assert!(snap.counter("em.runs_total") >= 2);
        assert_eq!(snap.counter("em.warm_starts_total"), 1);
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn delta_mode_seeds_full_then_refits_scoped() {
        let (graph, batches, _) = stream_batches(4, 30);
        let mut est = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        est.set_refit_mode(RefitMode::Delta(DeltaConfig {
            // Thresholds far out of reach: every refit after the seed
            // must run scoped.
            max_drift: 1e9,
            max_batch_fraction: 1e9,
            max_divergence: 1e9,
            ..DeltaConfig::default()
        }))
        .unwrap();
        let mut modes = Vec::new();
        for batch in &batches {
            est.ingest(batch).unwrap();
            let (fit, stats) = est.estimate_with_stats().unwrap();
            assert_eq!(fit.posterior.len(), 20);
            modes.push(stats.mode);
            if stats.mode == RefitOutcome::Delta {
                assert!(stats.warm);
                assert!(stats.touched_assertions <= 20);
            } else {
                assert_eq!(stats.touched_assertions, 20);
                assert_eq!(stats.touched_sources, 10);
            }
        }
        assert_eq!(modes[0], RefitOutcome::Full, "first refit seeds the engine");
        assert!(
            modes[1..].iter().all(|&m| m == RefitOutcome::Delta),
            "unreachable thresholds must keep the chain scoped: {modes:?}"
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn delta_zero_batch_fraction_is_bit_identical_to_full() {
        // max_batch_fraction = 0 falls back on every batch, so the delta
        // chain re-enters the full warm path each refit and must
        // reproduce RefitMode::Full bit for bit — the fallback
        // bit-identity contract.
        let (graph, batches, _) = stream_batches(4, 25);
        let mut full = StreamingEstimator::new(10, 20, graph.clone(), EmConfig::default()).unwrap();
        let mut delta = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        delta
            .set_refit_mode(RefitMode::Delta(DeltaConfig {
                max_batch_fraction: 0.0,
                ..DeltaConfig::default()
            }))
            .unwrap();
        let bits = |fit: &EmFit| {
            let mut v: Vec<u64> = fit.posterior.iter().map(|p| p.to_bits()).collect();
            for s in fit.theta.sources() {
                v.extend([s.a, s.b, s.f, s.g].map(f64::to_bits));
            }
            v
        };
        for (k, batch) in batches.iter().enumerate() {
            full.ingest(batch).unwrap();
            delta.ingest(batch).unwrap();
            let (fa, sa) = full.estimate_with_stats().unwrap();
            let (fb, sb) = delta.estimate_with_stats().unwrap();
            assert_eq!(bits(&fa), bits(&fb), "batch {k}");
            assert_eq!(fa.theta.z().to_bits(), fb.theta.z().to_bits());
            assert_eq!(sa.iterations, sb.iterations);
            let expected = if k == 0 {
                RefitOutcome::Full
            } else {
                RefitOutcome::Fallback
            };
            assert_eq!(sb.mode, expected, "batch {k}");
            assert_eq!(sa.mode, RefitOutcome::Full);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn delta_peek_is_stateless_and_matches_estimate() {
        let (graph, batches, _) = stream_batches(3, 30);
        let mut est = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        est.set_refit_mode(RefitMode::Delta(DeltaConfig::default()))
            .unwrap();
        est.ingest(&batches[0]).unwrap();
        est.estimate().unwrap(); // seed the engine
        est.ingest(&batches[1]).unwrap();
        let bits = |fit: &EmFit| {
            fit.posterior
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>()
        };
        let (peek_a, _) = est.peek_estimate().unwrap();
        let (peek_b, _) = est.peek_estimate().unwrap();
        assert_eq!(bits(&peek_a), bits(&peek_b), "delta peeks are reproducible");
        let (fit, stats) = est.estimate_with_stats().unwrap();
        assert_eq!(bits(&peek_a), bits(&fit), "peek = the estimate it previews");
        assert!(matches!(
            stats.mode,
            RefitOutcome::Delta | RefitOutcome::Fallback
        ));
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn delta_failed_refit_preserves_engine_and_pending() {
        let (graph, batches, _) = stream_batches(3, 30);
        let mut est = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        est.set_refit_mode(RefitMode::Delta(DeltaConfig::default()))
            .unwrap();
        est.ingest(&batches[0]).unwrap();
        est.estimate().unwrap();
        est.ingest(&batches[1]).unwrap();
        est.set_config(EmConfig {
            max_iters: 0,
            ..EmConfig::default()
        });
        assert!(matches!(
            est.estimate_with_stats(),
            Err(SenseError::BadConfig { .. })
        ));
        assert_eq!(est.pending(), batches[1].len());
        assert!(est.last_theta().is_some());
        est.set_config(EmConfig::default());
        let (_, stats) = est.estimate_with_stats().unwrap();
        assert!(
            stats.mode == RefitOutcome::Delta || stats.mode == RefitOutcome::Fallback,
            "the engine must survive the failed refit: {:?}",
            stats.mode
        );
    }

    #[test]
    fn delta_mode_validates_config() {
        let (graph, _, _) = stream_batches(1, 5);
        let mut est = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        assert!(matches!(
            est.set_refit_mode(RefitMode::Delta(DeltaConfig {
                max_divergence: f64::NAN,
                ..DeltaConfig::default()
            })),
            Err(SenseError::BadConfig { .. })
        ));
        assert_eq!(est.refit_mode(), RefitMode::Full, "rejected mode not set");
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn delta_metrics_record_scoped_refits_and_fallbacks() {
        let (graph, batches, _) = stream_batches(3, 30);
        let mut est = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        let (obs, rec) = Obs::recorder();
        est.set_obs(obs);
        est.set_refit_mode(RefitMode::Delta(DeltaConfig {
            max_drift: 1e9,
            max_batch_fraction: 1e9,
            max_divergence: 1e9,
            ..DeltaConfig::default()
        }))
        .unwrap();
        for batch in &batches {
            est.ingest(batch).unwrap();
            est.estimate().unwrap();
        }
        // Force a fallback: unreachable thresholds replaced by an
        // always-trip fraction.
        est.set_refit_mode(RefitMode::Delta(DeltaConfig {
            max_batch_fraction: 0.0,
            ..DeltaConfig::default()
        }))
        .unwrap();
        est.estimate().unwrap(); // re-seed (full)
        est.ingest(&batches[0]).unwrap();
        est.estimate().unwrap(); // fallback
        let snap = rec.snapshot();
        assert_eq!(snap.counter("stream.refit.delta_total"), 2);
        assert_eq!(snap.counter("stream.delta.fallbacks_total"), 1);
        assert_eq!(
            snap.histogram("stream.delta.touched_assertions")
                .unwrap()
                .count,
            2
        );
        assert_eq!(snap.histogram("stream.delta.drift").unwrap().count, 2);
        assert!(snap.gauge("stream.delta.divergence_bound").is_some());
        assert_eq!(snap.counter("stream.refits_total"), 5);
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn fallback_restores_exact_ll_and_stats_flag_it() {
        use crate::likelihood::data_log_likelihood_with;
        // Scoped refits serve a bounded-stale ℓℓ and must say so; a
        // fallback re-enters the full path and must restore the exact
        // value (bit-equal to a fresh full evaluation under its θ).
        let (graph, batches, _) = stream_batches(3, 30);
        let mut est = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        est.set_refit_mode(RefitMode::Delta(DeltaConfig {
            max_drift: 1e9,
            max_batch_fraction: 1e9,
            max_divergence: 1e9,
            ..DeltaConfig::default()
        }))
        .unwrap();
        est.ingest(&batches[0]).unwrap();
        let (seed_fit, seed_stats) = est.estimate_with_stats().unwrap();
        assert_eq!(seed_stats.mode, RefitOutcome::Full);
        assert!(seed_stats.ll_exact, "a full refit's ℓℓ is exact");
        let exact = |est: &mut StreamingEstimator, theta: &Theta| {
            let data = est.snapshot();
            data_log_likelihood_with(&data, theta, EmConfig::default().parallelism).unwrap()
        };
        assert_eq!(
            seed_fit.log_likelihood.to_bits(),
            exact(&mut est, &seed_fit.theta).to_bits()
        );
        est.ingest(&batches[1]).unwrap();
        let (_, delta_stats) = est.estimate_with_stats().unwrap();
        assert_eq!(delta_stats.mode, RefitOutcome::Delta);
        assert!(
            !delta_stats.ll_exact,
            "a scoped refit without exact_ll serves the stale sum and must be flagged"
        );
        // Now force a fallback: the full path must restore exactness.
        est.set_refit_mode(RefitMode::Delta(DeltaConfig {
            max_batch_fraction: 0.0,
            ..DeltaConfig::default()
        }))
        .unwrap();
        est.estimate().unwrap(); // re-seed after the mode switch
        est.ingest(&batches[2]).unwrap();
        let (fb_fit, fb_stats) = est.estimate_with_stats().unwrap();
        assert_eq!(fb_stats.mode, RefitOutcome::Fallback);
        assert!(fb_stats.ll_exact, "a fallback restores the exact ℓℓ");
        assert_eq!(
            fb_fit.log_likelihood.to_bits(),
            exact(&mut est, &fb_fit.theta).to_bits()
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn exact_ll_mode_serves_exact_ll_from_scoped_refits() {
        use crate::likelihood::data_log_likelihood_with;
        let (graph, batches, _) = stream_batches(3, 30);
        let mut est = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        est.set_refit_mode(RefitMode::Delta(DeltaConfig {
            max_drift: 1e9,
            max_batch_fraction: 1e9,
            max_divergence: 1e9,
            exact_ll: true,
        }))
        .unwrap();
        est.ingest(&batches[0]).unwrap();
        est.estimate().unwrap(); // seed
        est.ingest(&batches[1]).unwrap();
        let (fit, stats) = est.estimate_with_stats().unwrap();
        assert_eq!(stats.mode, RefitOutcome::Delta);
        assert!(stats.ll_exact);
        let data = est.snapshot();
        let exact =
            data_log_likelihood_with(&data, &fit.theta, EmConfig::default().parallelism).unwrap();
        assert_eq!(
            fit.log_likelihood.to_bits(),
            exact.to_bits(),
            "exact_ll scoped refit must match the full evaluation bit for bit"
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn export_restore_round_trip_is_bit_identical_full_mode() {
        let (graph, batches, _) = stream_batches(4, 30);
        let mut est = StreamingEstimator::new(10, 20, graph.clone(), EmConfig::default()).unwrap();
        est.ingest(&batches[0]).unwrap();
        est.estimate().unwrap();
        est.ingest(&batches[1]).unwrap(); // left pending: mid-debounce kill
        let state = est.export_state();

        let mut restored = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.claim_count(), est.claim_count());
        assert_eq!(restored.pending(), est.pending());

        let bits = |fit: &EmFit| {
            let mut v: Vec<u64> = fit.posterior.iter().map(|p| p.to_bits()).collect();
            for s in fit.theta.sources() {
                v.extend([s.a, s.b, s.f, s.g].map(f64::to_bits));
            }
            v.push(fit.log_likelihood.to_bits());
            v
        };
        for batch in &batches[2..] {
            est.ingest(batch).unwrap();
            restored.ingest(batch).unwrap();
            let (fa, sa) = est.estimate_with_stats().unwrap();
            let (fb, sb) = restored.estimate_with_stats().unwrap();
            assert_eq!(bits(&fa), bits(&fb));
            assert_eq!(sa, sb);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn export_restore_round_trip_is_bit_identical_delta_mode() {
        let (graph, batches, _) = stream_batches(5, 25);
        let mode = RefitMode::Delta(DeltaConfig {
            max_drift: 1e9,
            max_batch_fraction: 1e9,
            max_divergence: 1e9,
            ..DeltaConfig::default()
        });
        let mut est = StreamingEstimator::new(10, 20, graph.clone(), EmConfig::default()).unwrap();
        est.set_refit_mode(mode).unwrap();
        est.ingest(&batches[0]).unwrap();
        est.estimate().unwrap(); // seed the engine
        est.ingest(&batches[1]).unwrap();
        est.estimate().unwrap(); // scoped refit advances Λ/stamps
        est.ingest(&batches[2]).unwrap(); // pending changes not yet folded
        let state = est.export_state();

        let mut restored = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        restored.set_refit_mode(mode).unwrap();
        restored.restore_state(&state).unwrap();

        let bits = |fit: &EmFit| {
            fit.posterior
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>()
        };
        for batch in &batches[3..] {
            est.ingest(batch).unwrap();
            restored.ingest(batch).unwrap();
            let (fa, sa) = est.estimate_with_stats().unwrap();
            let (fb, sb) = restored.estimate_with_stats().unwrap();
            assert_eq!(sa.mode, RefitOutcome::Delta, "chain must stay scoped");
            assert_eq!(bits(&fa), bits(&fb));
            assert_eq!(fa.log_likelihood.to_bits(), fb.log_likelihood.to_bits());
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn restore_state_validates_preconditions() {
        let (graph, batches, _) = stream_batches(2, 10);
        let mut est = StreamingEstimator::new(10, 20, graph.clone(), EmConfig::default()).unwrap();
        est.ingest(&batches[0]).unwrap();
        let state = est.export_state();
        // Not fresh.
        let mut dirty =
            StreamingEstimator::new(10, 20, graph.clone(), EmConfig::default()).unwrap();
        dirty.ingest(&batches[1]).unwrap();
        assert!(matches!(
            dirty.restore_state(&state),
            Err(SenseError::BadConfig { .. })
        ));
        // Wrong shape.
        let mut small =
            StreamingEstimator::new(10, 19, FollowerGraph::new(10), EmConfig::default()).unwrap();
        assert!(matches!(
            small.restore_state(&state),
            Err(SenseError::BadConfig { .. })
        ));
        // A delta snapshot cannot restore onto a Full-mode estimator.
        let mut delta_est =
            StreamingEstimator::new(10, 20, graph.clone(), EmConfig::default()).unwrap();
        delta_est
            .set_refit_mode(RefitMode::Delta(DeltaConfig::default()))
            .unwrap();
        delta_est.ingest(&batches[0]).unwrap();
        delta_est.estimate().unwrap(); // seeds the engine
        let delta_state = delta_est.export_state();
        assert!(delta_state.engine.is_some());
        let mut full_mode = StreamingEstimator::new(10, 20, graph, EmConfig::default()).unwrap();
        assert!(matches!(
            full_mode.restore_state(&delta_state),
            Err(SenseError::BadConfig { .. })
        ));
    }

    #[test]
    #[cfg_attr(miri, ignore = "refit chain is too slow under Miri")]
    fn dependent_repeats_are_tracked_across_batches() {
        let mut g = FollowerGraph::new(2);
        g.add_follow(1, 0);
        let mut est = StreamingEstimator::new(2, 1, g, EmConfig::default()).unwrap();
        est.ingest(&[TimedClaim::new(0, 0, 1)]).unwrap();
        assert_eq!(est.snapshot().dependent_claim_count(), 0);
        est.ingest(&[TimedClaim::new(1, 0, 2)]).unwrap();
        let snap = est.snapshot();
        assert!(snap.dependent(1, 0), "cross-batch repeat must be dependent");
        assert_eq!(snap.dependent_claim_count(), 1);
    }
}
