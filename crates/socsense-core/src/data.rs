//! The estimator's input: the `SC` / `D` matrix pair.

use serde::{Deserialize, Serialize};

use socsense_graph::{build_matrices, FollowerGraph, TimedClaim};
use socsense_matrix::SparseBinaryMatrix;

use crate::error::SenseError;

/// Input to every fact-finder in the workspace: the source-claim matrix
/// `SC` and the dependency indicator matrix `D`, both `n × m`.
///
/// `SC[i, j] = 1` means source `i` asserted `C_j`; `D[i, j] = 1` means the
/// (actual or would-be) claim of `i` on `C_j` is *dependent* — an ancestor
/// of `i` asserted `C_j` first. See `socsense-graph` for how `D` is derived
/// from a timestamped claim log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClaimData {
    sc: SparseBinaryMatrix,
    d: SparseBinaryMatrix,
}

impl ClaimData {
    /// Wraps pre-built matrices.
    ///
    /// # Errors
    ///
    /// Returns [`SenseError::DimensionMismatch`] when shapes differ and
    /// [`SenseError::EmptyData`] when either dimension is zero.
    pub fn new(sc: SparseBinaryMatrix, d: SparseBinaryMatrix) -> Result<Self, SenseError> {
        if sc.nrows() != d.nrows() {
            return Err(SenseError::DimensionMismatch {
                what: "SC/D row count",
                expected: sc.nrows() as usize,
                actual: d.nrows() as usize,
            });
        }
        if sc.ncols() != d.ncols() {
            return Err(SenseError::DimensionMismatch {
                what: "SC/D column count",
                expected: sc.ncols() as usize,
                actual: d.ncols() as usize,
            });
        }
        if sc.nrows() == 0 || sc.ncols() == 0 {
            return Err(SenseError::EmptyData);
        }
        Ok(Self { sc, d })
    }

    /// Builds `SC` and `D` from a timestamped claim log and the follow
    /// relation (see [`socsense_graph::build_matrices`]).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `m == 0`, or a claim is out of bounds.
    pub fn from_claims(n: u32, m: u32, claims: &[TimedClaim], graph: &FollowerGraph) -> Self {
        assert!(n > 0 && m > 0, "need at least one source and one assertion");
        let (sc, d) = build_matrices(n, m, claims, graph);
        Self { sc, d }
    }

    /// Wraps matrices the caller has already built with a common shape —
    /// the streaming snapshot's incremental rebuild path, which derives
    /// both matrices from one [`socsense_graph::ClaimLogIndex`] and so
    /// cannot produce mismatched dimensions.
    pub(crate) fn from_parts(sc: SparseBinaryMatrix, d: SparseBinaryMatrix) -> Self {
        debug_assert_eq!(sc.nrows(), d.nrows());
        debug_assert_eq!(sc.ncols(), d.ncols());
        Self { sc, d }
    }

    /// The same claims under the independence assumption: `SC` unchanged,
    /// `D` empty. This is the "ignore the graph entirely" arm of the
    /// dependency-discovery evaluation (EM-Ext degenerates to the
    /// regular EM of the paper's baseline when no cell is dependent).
    pub fn assuming_independence(&self) -> Self {
        Self {
            sc: self.sc.clone(),
            d: SparseBinaryMatrix::empty(self.sc.nrows(), self.sc.ncols()),
        }
    }

    /// Number of sources `n`.
    pub fn source_count(&self) -> usize {
        self.sc.nrows() as usize
    }

    /// Number of assertions `m`.
    pub fn assertion_count(&self) -> usize {
        self.sc.ncols() as usize
    }

    /// The source-claim matrix.
    pub fn sc(&self) -> &SparseBinaryMatrix {
        &self.sc
    }

    /// The dependency indicator matrix.
    pub fn d(&self) -> &SparseBinaryMatrix {
        &self.d
    }

    /// Whether source `i` claimed assertion `j`.
    #[inline]
    pub fn claimed(&self, i: u32, j: u32) -> bool {
        self.sc.contains(i, j)
    }

    /// Whether cell `(i, j)` is dependent.
    #[inline]
    pub fn dependent(&self, i: u32, j: u32) -> bool {
        self.d.contains(i, j)
    }

    /// Total number of claims.
    pub fn claim_count(&self) -> usize {
        self.sc.nnz()
    }

    /// Number of claims that are dependent (`SC ∧ D`).
    ///
    /// Walks the sorted `SC` and `D` rows in one merged pass — `O(nnz)`
    /// overall, instead of one binary search into `D` per `SC` entry.
    pub fn dependent_claim_count(&self) -> usize {
        (0..self.sc.nrows())
            .map(|i| {
                let (a, b) = (self.sc.row(i), self.d.row(i));
                let (mut x, mut y, mut count) = (0usize, 0usize, 0usize);
                while x < a.len() && y < b.len() {
                    match a[x].cmp(&b[y]) {
                        std::cmp::Ordering::Less => x += 1,
                        std::cmp::Ordering::Greater => y += 1,
                        std::cmp::Ordering::Equal => {
                            count += 1;
                            x += 1;
                            y += 1;
                        }
                    }
                }
                count
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socsense_graph::FollowerGraph;

    #[test]
    fn new_validates_shapes() {
        let sc = SparseBinaryMatrix::empty(2, 3);
        let d = SparseBinaryMatrix::empty(2, 2);
        assert!(matches!(
            ClaimData::new(sc, d),
            Err(SenseError::DimensionMismatch { .. })
        ));
        let sc = SparseBinaryMatrix::empty(0, 3);
        let d = SparseBinaryMatrix::empty(0, 3);
        assert!(matches!(ClaimData::new(sc, d), Err(SenseError::EmptyData)));
    }

    #[test]
    fn from_claims_round_trips_counts() {
        let mut g = FollowerGraph::new(3);
        g.add_follow(0, 1);
        let claims = vec![
            TimedClaim::new(1, 0, 1),
            TimedClaim::new(0, 0, 2),
            TimedClaim::new(2, 1, 3),
        ];
        let data = ClaimData::from_claims(3, 2, &claims, &g);
        assert_eq!(data.source_count(), 3);
        assert_eq!(data.assertion_count(), 2);
        assert_eq!(data.claim_count(), 3);
        assert_eq!(data.dependent_claim_count(), 1);
        assert!(data.claimed(0, 0) && data.dependent(0, 0));
        assert!(data.claimed(2, 1) && !data.dependent(2, 1));
    }
}
