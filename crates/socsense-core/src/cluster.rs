//! Assertion-cluster extraction and per-cluster estimator handoff.
//!
//! Two sources are *coupled* when some claim column carries cells of
//! both; two assertions are coupled when some source has cells on both
//! columns. The connected components of this relation — **assertion
//! clusters** — partition the claim log: every `SC`/`D` cell of a
//! cluster's assertions belongs to one of the cluster's sources, and
//! (because the dependency rule of
//! [`build_matrices`](socsense_graph::build_matrices) looks only at
//! *direct* followees) the follow edges that matter to a cluster run
//! between its own sources. Restricting the log, the graph, and the
//! estimator to one cluster therefore reproduces the cluster's `SC`/`D`
//! sub-matrices exactly.
//!
//! This module provides the three pieces the sharded serving tier
//! builds on:
//!
//! * [`cluster_partition`] — batch extraction of the clusters of a
//!   [`ClaimData`];
//! * [`ClusterTracker`] — an incremental union-find over the claim
//!   stream (cluster key = smallest member assertion id), reporting
//!   which clusters each batch touched and which keys merged away;
//! * [`ClusterWorld`] — the compacted sub-problem of one cluster
//!   (sorted id remaps + induced follow graph) and the
//!   [`StreamingEstimator`] handoff over it.

use std::collections::BTreeMap;

use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_matrix::UnionFind;

use crate::data::ClaimData;
use crate::em::EmConfig;
use crate::error::SenseError;
use crate::streaming::StreamingEstimator;

/// One assertion cluster: its key and sorted member id sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMembers {
    key: u32,
    assertions: Vec<u32>,
    sources: Vec<u32>,
}

impl ClusterMembers {
    /// The cluster's identity: its smallest member assertion id. Stable
    /// under membership growth; a merge keeps the smaller key.
    pub fn key(&self) -> u32 {
        self.key
    }

    /// Sorted global ids of the member assertions.
    pub fn assertions(&self) -> &[u32] {
        &self.assertions
    }

    /// Sorted global ids of the member sources (every source with at
    /// least one `SC` or `D` cell on a member column).
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }
}

/// Inserts `v` into a sorted vector, keeping it sorted and duplicate
/// free.
fn insert_sorted(xs: &mut Vec<u32>, v: u32) {
    if let Err(pos) = xs.binary_search(&v) {
        xs.insert(pos, v);
    }
}

/// Merges two sorted, duplicate-free vectors.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The assertion clusters of `data`, sorted by key.
///
/// A source belongs to the cluster of every column it has a cell on;
/// since its columns are all unioned together, that is exactly one
/// cluster. Sources with no cells belong to no cluster.
pub fn cluster_partition(data: &ClaimData) -> Vec<ClusterMembers> {
    let n = data.source_count();
    let m = data.assertion_count();
    let mut uf = UnionFind::new(m);
    let mut tracked = vec![false; m];
    let mut row_anchor: Vec<Option<u32>> = vec![None; n];
    for i in 0..n as u32 {
        let cols = merge_sorted(data.sc().row(i), data.d().row(i));
        for &j in &cols {
            tracked[j as usize] = true;
            match row_anchor[i as usize] {
                None => row_anchor[i as usize] = Some(j),
                Some(a) => uf.union(a, j),
            }
        }
    }
    let mut by_root: BTreeMap<u32, ClusterMembers> = BTreeMap::new();
    for j in 0..m as u32 {
        if tracked[j as usize] {
            let r = uf.find(j);
            let c = by_root.entry(r).or_insert_with(|| ClusterMembers {
                key: j,
                assertions: Vec::new(),
                sources: Vec::new(),
            });
            c.key = c.key.min(j);
            c.assertions.push(j);
        }
    }
    for (i, anchor) in row_anchor.iter().enumerate() {
        if let Some(a) = anchor {
            let r = uf.find(*a);
            by_root
                .get_mut(&r)
                .expect("anchored column is tracked")
                .sources
                .push(i as u32);
        }
    }
    let mut clusters: Vec<ClusterMembers> = by_root.into_values().collect();
    clusters.sort_by_key(|c| c.key);
    clusters
}

/// What one ingested batch did to the cluster structure.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterUpdate {
    /// Post-batch keys (sorted) of every cluster whose cell set or
    /// membership changed — exactly the clusters that received claims
    /// or absorbed another cluster.
    pub touched: Vec<u32>,
    /// Keys (sorted) that no longer exist: clusters absorbed by a merge
    /// (the survivor keeps the smaller key and appears in `touched`).
    pub removed: Vec<u32>,
}

/// Incrementally maintained assertion clusters over a claim stream.
///
/// A [`UnionFind`] over assertions driven by cell events: a claim on
/// `(i, j)` activates cell `(i, j)` plus cell `(f, j)` for every
/// follower `f` of `i`, and each event unions `j` with the first
/// column its source ever touched, so columns sharing a source always
/// share a cluster. Every operation is idempotent — re-activating a
/// cell re-unions already-united columns — so the tracker processes
/// raw events without any per-cell bookkeeping (the per-cell time maps
/// a full [`ClaimLogIndex`](socsense_graph::ClaimLogIndex) maintains
/// only matter for `SC`/`D` *timing*, which membership never reads).
/// That keeps the router's per-claim overhead on the serve ingest hot
/// path to a couple of near-constant union-find probes.
#[derive(Debug, Clone)]
pub struct ClusterTracker {
    graph: FollowerGraph,
    uf: UnionFind,
    /// Per source: the first column it got a cell on (its cluster
    /// representative), `None` while it has no cells.
    anchor: Vec<Option<u32>>,
    /// Per assertion: whether it has any cell yet.
    tracked: Vec<bool>,
    /// Live clusters by key.
    members: BTreeMap<u32, ClusterMembers>,
    /// Union-find root → cluster key.
    root_key: BTreeMap<u32, u32>,
}

impl ClusterTracker {
    /// An empty tracker over `n` sources and `m` assertions.
    ///
    /// # Errors
    ///
    /// [`SenseError::EmptyData`] when `n == 0` or `m == 0`, or when the
    /// graph covers a different source count
    /// ([`SenseError::DimensionMismatch`]).
    pub fn new(n: u32, m: u32, graph: FollowerGraph) -> Result<Self, SenseError> {
        if n == 0 || m == 0 {
            return Err(SenseError::EmptyData);
        }
        if graph.node_count() != n {
            return Err(SenseError::DimensionMismatch {
                what: "follower graph node count vs n",
                expected: n as usize,
                actual: graph.node_count() as usize,
            });
        }
        Ok(Self {
            graph,
            uf: UnionFind::new(m as usize),
            anchor: vec![None; n as usize],
            tracked: vec![false; m as usize],
            members: BTreeMap::new(),
            root_key: BTreeMap::new(),
        })
    }

    /// Number of sources.
    pub fn source_count(&self) -> u32 {
        self.anchor.len() as u32
    }

    /// Number of assertions.
    pub fn assertion_count(&self) -> u32 {
        self.tracked.len() as u32
    }

    /// The follow relation the tracker derives dependencies from.
    pub fn graph(&self) -> &FollowerGraph {
        &self.graph
    }

    /// Live clusters in key order.
    pub fn clusters(&self) -> impl Iterator<Item = &ClusterMembers> {
        self.members.values()
    }

    /// Number of live clusters.
    pub fn cluster_count(&self) -> usize {
        self.members.len()
    }

    /// The cluster of one assertion, `None` while it has no cells.
    pub fn cluster_key_of(&mut self, assertion: u32) -> Option<u32> {
        if !*self.tracked.get(assertion as usize)? {
            return None;
        }
        let r = self.uf.find(assertion);
        self.root_key.get(&r).copied()
    }

    /// The members of the cluster with the given key.
    pub fn members(&self, key: u32) -> Option<&ClusterMembers> {
        self.members.get(&key)
    }

    /// Whether a source has any cell (and therefore a cluster).
    pub fn is_active_source(&self, source: u32) -> bool {
        self.anchor
            .get(source as usize)
            .is_some_and(|a| a.is_some())
    }

    /// Folds a batch of claims into the cluster structure.
    ///
    /// Validation is atomic: an out-of-range claim rejects the whole
    /// batch before any state changes.
    ///
    /// # Errors
    ///
    /// [`SenseError::DimensionMismatch`] for an out-of-range source or
    /// assertion id.
    pub fn ingest(&mut self, batch: &[TimedClaim]) -> Result<ClusterUpdate, SenseError> {
        let (n, m) = (self.source_count(), self.assertion_count());
        for c in batch {
            if c.source >= n {
                return Err(SenseError::DimensionMismatch {
                    what: "claim source id vs n",
                    expected: n as usize,
                    actual: c.source as usize,
                });
            }
            if c.assertion >= m {
                return Err(SenseError::DimensionMismatch {
                    what: "claim assertion id vs m",
                    expected: m as usize,
                    actual: c.assertion as usize,
                });
            }
        }
        // Raw cell events, repeats included: a repeat only re-unions
        // already-united columns, which the processing loop below makes
        // a couple of find()s — cheaper than deduplicating up front.
        let mut events: Vec<(u32, u32)> = Vec::with_capacity(batch.len());
        for c in batch {
            events.push((c.source, c.assertion));
            for &f in self.graph.followers(c.source) {
                events.push((f, c.assertion));
            }
        }
        let mut touched_assertions: Vec<u32> = Vec::with_capacity(events.len());
        let mut removed: Vec<u32> = Vec::new();
        for &(src, j) in &events {
            touched_assertions.push(j);
            if !self.tracked[j as usize] {
                self.tracked[j as usize] = true;
                // A fresh column is its own union-find root.
                self.members.insert(
                    j,
                    ClusterMembers {
                        key: j,
                        assertions: vec![j],
                        sources: Vec::new(),
                    },
                );
                self.root_key.insert(j, j);
            }
            match self.anchor[src as usize] {
                None => {
                    self.anchor[src as usize] = Some(j);
                    let key = self.root_key[&self.uf.find(j)];
                    insert_sorted(
                        // detlint: allow(P1) -- map invariant: every key in root_key has a members entry; a miss is a union-find bug worth a loud panic
                        &mut self.members.get_mut(&key).expect("live key").sources,
                        src,
                    );
                }
                Some(a) => {
                    if let Some(gone) = self.union_clusters(a, j) {
                        removed.push(gone);
                    }
                }
            }
        }
        touched_assertions.sort_unstable();
        touched_assertions.dedup();
        let mut touched: Vec<u32> = touched_assertions
            .into_iter()
            .map(|j| self.root_key[&self.uf.find(j)])
            .collect();
        touched.sort_unstable();
        touched.dedup();
        removed.sort_unstable();
        removed.dedup();
        Ok(ClusterUpdate { touched, removed })
    }

    /// Unions the clusters of two tracked assertions; returns the key
    /// that disappeared, if the union actually merged two clusters.
    fn union_clusters(&mut self, a: u32, b: u32) -> Option<u32> {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return None;
        }
        let ka = self.root_key.remove(&ra).expect("tracked root has a key"); // detlint: allow(P1) -- map invariant: both roots were just found for tracked assertions
        let kb = self.root_key.remove(&rb).expect("tracked root has a key"); // detlint: allow(P1) -- map invariant: both roots were just found for tracked assertions
        self.uf.union(ra, rb);
        let r = self.uf.find(ra);
        let (keep, gone) = if ka < kb { (ka, kb) } else { (kb, ka) };
        let lost = self.members.remove(&gone).expect("live key"); // detlint: allow(P1) -- map invariant: every key in root_key has a members entry
        let w = self.members.get_mut(&keep).expect("live key"); // detlint: allow(P1) -- map invariant: every key in root_key has a members entry
        w.assertions = merge_sorted(&w.assertions, &lost.assertions);
        w.sources = merge_sorted(&w.sources, &lost.sources);
        self.root_key.insert(r, keep);
        Some(gone)
    }
}

/// The compacted sub-problem of one cluster: sorted global→local id
/// remaps plus the induced follow graph over the member sources.
///
/// Localization is exact: because a dependency can only come from a
/// *direct* followee that claimed the column first, and any such
/// followee is itself a member source, the induced graph reproduces
/// every ancestor time the full graph would — the cluster's local
/// `SC`/`D` matrices equal the global ones restricted to its rows and
/// columns.
#[derive(Debug, Clone)]
pub struct ClusterWorld {
    sources: Vec<u32>,
    assertions: Vec<u32>,
    graph: FollowerGraph,
}

impl ClusterWorld {
    /// Builds the sub-problem of a cluster with the given sorted member
    /// sets, inducing the follow subgraph from `graph`.
    ///
    /// # Errors
    ///
    /// [`SenseError::EmptyData`] when either member set is empty;
    /// [`SenseError::DimensionMismatch`] when a member id is outside
    /// `graph` / the implied id space.
    pub fn new(
        sources: &[u32],
        assertions: &[u32],
        graph: &FollowerGraph,
    ) -> Result<Self, SenseError> {
        if sources.is_empty() || assertions.is_empty() {
            return Err(SenseError::EmptyData);
        }
        for &s in sources {
            if s >= graph.node_count() {
                return Err(SenseError::DimensionMismatch {
                    what: "cluster source id vs graph",
                    expected: graph.node_count() as usize,
                    actual: s as usize,
                });
            }
        }
        let mut induced = FollowerGraph::new(sources.len() as u32);
        for (li, &gi) in sources.iter().enumerate() {
            for &ga in graph.ancestors(gi) {
                if let Ok(ls) = sources.binary_search(&ga) {
                    induced.add_follow(li as u32, ls as u32);
                }
            }
        }
        Ok(Self {
            sources: sources.to_vec(),
            assertions: assertions.to_vec(),
            graph: induced,
        })
    }

    /// Local source count.
    pub fn source_count(&self) -> u32 {
        self.sources.len() as u32
    }

    /// Local assertion count.
    pub fn assertion_count(&self) -> u32 {
        self.assertions.len() as u32
    }

    /// Sorted global ids of the member sources; index = local id.
    pub fn global_sources(&self) -> &[u32] {
        &self.sources
    }

    /// Sorted global ids of the member assertions; index = local id.
    pub fn global_assertions(&self) -> &[u32] {
        &self.assertions
    }

    /// The induced follow graph over local source ids.
    pub fn graph(&self) -> &FollowerGraph {
        &self.graph
    }

    /// Local id of a global source, if it is a member.
    pub fn local_source(&self, global: u32) -> Option<u32> {
        self.sources.binary_search(&global).ok().map(|i| i as u32)
    }

    /// Local id of a global assertion, if it is a member.
    pub fn local_assertion(&self, global: u32) -> Option<u32> {
        self.assertions
            .binary_search(&global)
            .ok()
            .map(|i| i as u32)
    }

    /// Global id of a local assertion.
    pub fn global_assertion(&self, local: u32) -> u32 {
        self.assertions[local as usize]
    }

    /// Remaps a batch of global-id claims into local ids.
    ///
    /// # Errors
    ///
    /// [`SenseError::DimensionMismatch`] when a claim's source or
    /// assertion is not a member — the caller routed it to the wrong
    /// cluster.
    pub fn localize_batch(&self, claims: &[TimedClaim]) -> Result<Vec<TimedClaim>, SenseError> {
        claims
            .iter()
            .map(|c| {
                let s = self
                    .local_source(c.source)
                    .ok_or(SenseError::DimensionMismatch {
                        what: "claim source vs cluster members",
                        expected: self.sources.len(),
                        actual: c.source as usize,
                    })?;
                let j = self
                    .local_assertion(c.assertion)
                    .ok_or(SenseError::DimensionMismatch {
                        what: "claim assertion vs cluster members",
                        expected: self.assertions.len(),
                        actual: c.assertion as usize,
                    })?;
                Ok(TimedClaim::new(s, j, c.time))
            })
            .collect()
    }

    /// Hands off a fresh [`StreamingEstimator`] over the compacted
    /// sub-problem (local ids, induced graph).
    ///
    /// # Errors
    ///
    /// Propagates estimator construction errors.
    pub fn estimator(&self, config: EmConfig) -> Result<StreamingEstimator, SenseError> {
        StreamingEstimator::new(
            self.source_count(),
            self.assertion_count(),
            self.graph.clone(),
            config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claims(raw: &[(u32, u32, u64)]) -> Vec<TimedClaim> {
        raw.iter()
            .map(|&(s, j, t)| TimedClaim::new(s, j, t))
            .collect()
    }

    #[test]
    fn partition_splits_independent_camps() {
        // Sources {0,1} on assertions {0,1}; sources {2,3} on {2,3}.
        let g = FollowerGraph::new(4);
        let cs = claims(&[
            (0, 0, 1),
            (0, 1, 2),
            (1, 1, 3),
            (2, 2, 4),
            (3, 2, 5),
            (3, 3, 6),
        ]);
        let data = ClaimData::from_claims(4, 4, &cs, &g);
        let parts = cluster_partition(&data);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].key(), 0);
        assert_eq!(parts[0].assertions(), &[0, 1]);
        assert_eq!(parts[0].sources(), &[0, 1]);
        assert_eq!(parts[1].key(), 2);
        assert_eq!(parts[1].assertions(), &[2, 3]);
        assert_eq!(parts[1].sources(), &[2, 3]);
    }

    #[test]
    fn silent_followers_join_and_link_clusters() {
        // Source 2 never claims but follows both claimants, so its D
        // cells link assertions 0 and 1 into one cluster.
        let mut g = FollowerGraph::new(3);
        g.add_follow(2, 0);
        g.add_follow(2, 1);
        let cs = claims(&[(0, 0, 1), (1, 1, 2)]);
        let data = ClaimData::from_claims(3, 2, &cs, &g);
        let parts = cluster_partition(&data);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].sources(), &[0, 1, 2]);
        assert_eq!(parts[0].assertions(), &[0, 1]);
    }

    #[test]
    fn tracker_matches_batch_partition_at_every_prefix() {
        let mut g = FollowerGraph::new(5);
        g.add_follow(1, 0);
        g.add_follow(4, 3);
        let stream = claims(&[
            (0, 0, 1),
            (2, 3, 2),
            (1, 0, 3), // dependent repeat
            (3, 3, 4),
            (0, 1, 5), // links assertion 1 into cluster 0
            (2, 0, 6), // merges the two clusters
        ]);
        let mut tracker = ClusterTracker::new(5, 4, g.clone()).unwrap();
        for end in 1..=stream.len() {
            tracker.ingest(&stream[end - 1..end]).unwrap();
            let data = ClaimData::from_claims(5, 4, &stream[..end], &g);
            let batch: Vec<ClusterMembers> = cluster_partition(&data);
            let live: Vec<ClusterMembers> = tracker.clusters().cloned().collect();
            assert_eq!(live, batch, "prefix of {end} claims");
        }
    }

    #[test]
    fn tracker_reports_touched_and_removed_keys() {
        let g = FollowerGraph::new(4);
        let mut tracker = ClusterTracker::new(4, 6, g).unwrap();
        let up = tracker.ingest(&claims(&[(0, 0, 1), (1, 4, 2)])).unwrap();
        assert_eq!(up.touched, vec![0, 4]);
        assert!(up.removed.is_empty());
        // Source 0 claims column 4: clusters 0 and 4 merge, key 4 dies.
        let up = tracker.ingest(&claims(&[(0, 4, 3)])).unwrap();
        assert_eq!(up.touched, vec![0]);
        assert_eq!(up.removed, vec![4]);
        assert_eq!(tracker.cluster_key_of(4), Some(0));
        assert_eq!(tracker.members(0).unwrap().sources(), &[0, 1]);
        assert_eq!(tracker.cluster_count(), 1);
    }

    #[test]
    fn tracker_rejects_out_of_range_batches_atomically() {
        let g = FollowerGraph::new(2);
        let mut tracker = ClusterTracker::new(2, 2, g).unwrap();
        let err = tracker
            .ingest(&claims(&[(0, 0, 1), (0, 9, 2)]))
            .unwrap_err();
        assert!(matches!(err, SenseError::DimensionMismatch { .. }));
        assert_eq!(tracker.cluster_count(), 0, "bad batch must not land");
    }

    #[test]
    fn world_localizes_and_reproduces_submatrices() {
        // Global world: follower edge 1 -> 0 inside the cluster, plus an
        // out-of-cluster source 2 that must not affect the sub-problem.
        let mut g = FollowerGraph::new(3);
        g.add_follow(1, 0);
        let cs = claims(&[(0, 1, 1), (1, 1, 2), (2, 0, 3)]);
        let world = ClusterWorld::new(&[0, 1], &[1], &g).unwrap();
        assert_eq!(world.source_count(), 2);
        assert_eq!(world.assertion_count(), 1);
        assert!(world.graph().follows(1, 0));
        let local = world.localize_batch(&cs[..2]).unwrap();
        assert_eq!(local, claims(&[(0, 0, 1), (1, 0, 2)]));
        let global = ClaimData::from_claims(3, 2, &cs, &g);
        let sub = ClaimData::from_claims(2, 1, &local, world.graph());
        // Column 1 globally == column 0 locally, rows remapped 0->0, 1->1.
        assert_eq!(global.sc().col(1), sub.sc().col(0));
        assert_eq!(global.d().col(1), sub.d().col(0));
        assert!(world.localize_batch(&cs[2..]).is_err());
    }

    #[test]
    fn world_estimator_matches_global_on_identity_remap() {
        let g = FollowerGraph::new(2);
        let cs = claims(&[(0, 0, 1), (1, 0, 2), (0, 1, 3)]);
        let world = ClusterWorld::new(&[0, 1], &[0, 1], &g).unwrap();
        let mut global = StreamingEstimator::new(2, 2, g, EmConfig::default()).unwrap();
        let mut local = world.estimator(EmConfig::default()).unwrap();
        global.ingest(&cs).unwrap();
        local.ingest(&world.localize_batch(&cs).unwrap()).unwrap();
        let fg = global.estimate().unwrap();
        let fl = local.estimate().unwrap();
        assert_eq!(
            fg.posterior.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            fl.posterior.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        );
    }
}
