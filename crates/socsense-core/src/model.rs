//! The source behaviour model `θ` (Sec. II-B of the paper).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::SenseError;

/// The four behavioural probabilities of one source (the paper's `θ_i`).
///
/// | field | paper | meaning |
/// |---|---|---|
/// | `a` | `a_i` | `P(S_iC_j = 1 \| C_j = 1, D_ij = 0)` — independent claim on a true assertion |
/// | `b` | `b_i` | `P(S_iC_j = 1 \| C_j = 0, D_ij = 0)` — independent claim on a false assertion |
/// | `f` | `f_i` | `P(S_iC_j = 1 \| C_j = 1, D_ij = 1)` — dependent claim on a true assertion |
/// | `g` | `g_i` | `P(S_iC_j = 1 \| C_j = 0, D_ij = 1)` — dependent claim on a false assertion |
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceParams {
    /// `P(claim | true, independent)`.
    pub a: f64,
    /// `P(claim | false, independent)`.
    pub b: f64,
    /// `P(claim | true, dependent)`.
    pub f: f64,
    /// `P(claim | false, dependent)`.
    pub g: f64,
}

impl SourceParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SenseError::InvalidProbability`] if any value falls
    /// outside `[0, 1]` or is not finite.
    pub fn new(a: f64, b: f64, f: f64, g: f64) -> Result<Self, SenseError> {
        for (name, v) in [("a", a), ("b", b), ("f", f), ("g", g)] {
            check_prob(name, v)?;
        }
        Ok(Self { a, b, f, g })
    }

    /// A neutral source: every rate `0.5` (claims carry no information).
    pub fn neutral() -> Self {
        Self {
            a: 0.5,
            b: 0.5,
            f: 0.5,
            g: 0.5,
        }
    }

    /// `P(S_iC_j = sc | C_j = c, D_ij = dep)` — Table II of the paper.
    ///
    /// # Example
    ///
    /// ```
    /// use socsense_core::SourceParams;
    /// let p = SourceParams::new(0.8, 0.2, 0.6, 0.4)?;
    /// assert_eq!(p.claim_prob(true, false, true), 0.8);       // a
    /// assert_eq!(p.claim_prob(true, true, false), 1.0 - 0.6); // 1 - f
    /// # Ok::<(), socsense_core::SenseError>(())
    /// ```
    #[inline]
    pub fn claim_prob(&self, c: bool, dep: bool, sc: bool) -> f64 {
        let on = match (c, dep) {
            (true, false) => self.a,
            (false, false) => self.b,
            (true, true) => self.f,
            (false, true) => self.g,
        };
        if sc {
            on
        } else {
            1.0 - on
        }
    }

    /// Clamps every rate into `[eps, 1 - eps]`.
    pub fn clamped(self, eps: f64) -> Self {
        Self {
            a: self.a.clamp(eps, 1.0 - eps),
            b: self.b.clamp(eps, 1.0 - eps),
            f: self.f.clamp(eps, 1.0 - eps),
            g: self.g.clamp(eps, 1.0 - eps),
        }
    }
}

impl Default for SourceParams {
    fn default() -> Self {
        Self::neutral()
    }
}

/// The full parameter set `θ`: one [`SourceParams`] per source plus the
/// assertion prior `z = P(C = 1)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Theta {
    sources: Vec<SourceParams>,
    z: f64,
}

impl Theta {
    /// Creates a validated parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`SenseError::InvalidProbability`] when `z ∉ [0, 1]` and
    /// [`SenseError::EmptyData`] when `sources` is empty.
    pub fn new(sources: Vec<SourceParams>, z: f64) -> Result<Self, SenseError> {
        if sources.is_empty() {
            return Err(SenseError::EmptyData);
        }
        check_prob("z", z)?;
        Ok(Self { sources, z })
    }

    /// A set of `n` [neutral](SourceParams::neutral) sources with prior `z = 0.5`.
    pub fn neutral(n: usize) -> Self {
        Self {
            sources: vec![SourceParams::neutral(); n],
            z: 0.5,
        }
    }

    /// Draws every rate uniformly from `(0.05, 0.95)`; used for random EM
    /// restarts.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let sources = (0..n)
            .map(|_| SourceParams {
                a: rng.gen_range(0.05..0.95),
                b: rng.gen_range(0.05..0.95),
                f: rng.gen_range(0.05..0.95),
                g: rng.gen_range(0.05..0.95),
            })
            .collect();
        Self {
            sources,
            z: rng.gen_range(0.2..0.8),
        }
    }

    /// Number of sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Parameters of source `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn source(&self, i: usize) -> &SourceParams {
        &self.sources[i]
    }

    /// All per-source parameters.
    pub fn sources(&self) -> &[SourceParams] {
        &self.sources
    }

    /// The assertion prior `z = P(C = 1)`.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Largest absolute difference across all parameters (used as the EM
    /// convergence criterion).
    ///
    /// # Errors
    ///
    /// Returns [`SenseError::DimensionMismatch`] if the source counts
    /// differ.
    pub fn max_abs_diff(&self, other: &Theta) -> Result<f64, SenseError> {
        if self.sources.len() != other.sources.len() {
            return Err(SenseError::DimensionMismatch {
                what: "theta source count",
                expected: self.sources.len(),
                actual: other.sources.len(),
            });
        }
        let mut d: f64 = (self.z - other.z).abs();
        for (s, o) in self.sources.iter().zip(&other.sources) {
            d = d
                .max((s.a - o.a).abs())
                .max((s.b - o.b).abs())
                .max((s.f - o.f).abs())
                .max((s.g - o.g).abs());
        }
        Ok(d)
    }

    /// Clamps every parameter (including `z`) into `[eps, 1 - eps]`.
    pub fn clamp_in_place(&mut self, eps: f64) {
        for s in &mut self.sources {
            *s = s.clamped(eps);
        }
        self.z = self.z.clamp(eps, 1.0 - eps);
    }

    /// Overwrites source `i`'s parameters. The caller is responsible for
    /// keeping them in `[0, 1]` (use [`SourceParams::new`] or
    /// [`Theta::clamp_in_place`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_source(&mut self, i: usize, p: SourceParams) {
        self.sources[i] = p;
    }

    /// Overwrites the assertion prior. The caller is responsible for
    /// keeping it in `[0, 1]`.
    pub fn set_z(&mut self, z: f64) {
        self.z = z;
    }
}

fn check_prob(name: &'static str, v: f64) -> Result<(), SenseError> {
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        return Err(SenseError::InvalidProbability { name, value: v });
    }
    Ok(())
}

/// Thresholds posteriors into hard true/false labels.
///
/// A posterior of exactly `0.5` is labelled *false*, matching the paper's
/// convention of treating partially-supported assertions conservatively.
///
/// # Example
///
/// ```
/// use socsense_core::classify;
/// assert_eq!(classify(&[0.9, 0.5, 0.2]), vec![true, false, false]);
/// ```
pub fn classify(posteriors: &[f64]) -> Vec<bool> {
    posteriors.iter().map(|&p| p > 0.5).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn source_params_validate_ranges() {
        assert!(SourceParams::new(0.5, 0.5, 0.5, 0.5).is_ok());
        assert!(matches!(
            SourceParams::new(1.5, 0.5, 0.5, 0.5),
            Err(SenseError::InvalidProbability { name: "a", .. })
        ));
        assert!(SourceParams::new(0.5, f64::NAN, 0.5, 0.5).is_err());
    }

    #[test]
    fn claim_prob_covers_table_ii() {
        let p = SourceParams::new(0.8, 0.2, 0.6, 0.4).unwrap();
        // Each row of Table II.
        assert_eq!(p.claim_prob(true, false, true), 0.8);
        assert!((p.claim_prob(true, false, false) - 0.2).abs() < 1e-15);
        assert_eq!(p.claim_prob(false, false, true), 0.2);
        assert_eq!(p.claim_prob(false, false, false), 0.8);
        assert_eq!(p.claim_prob(true, true, true), 0.6);
        assert!((p.claim_prob(true, true, false) - 0.4).abs() < 1e-15);
        assert_eq!(p.claim_prob(false, true, true), 0.4);
        assert_eq!(p.claim_prob(false, true, false), 0.6);
    }

    #[test]
    fn clamped_stays_inside_margin() {
        let p = SourceParams::new(0.0, 1.0, 0.5, 0.5).unwrap().clamped(1e-6);
        assert!(p.a >= 1e-6 && p.b <= 1.0 - 1e-6);
    }

    #[test]
    fn theta_rejects_empty_and_bad_z() {
        assert!(matches!(
            Theta::new(vec![], 0.5),
            Err(SenseError::EmptyData)
        ));
        assert!(Theta::new(vec![SourceParams::neutral()], 1.5).is_err());
    }

    #[test]
    fn theta_max_abs_diff() {
        let a = Theta::neutral(2);
        let mut b = a.clone();
        b.set_z(0.7);
        assert!((a.max_abs_diff(&b).unwrap() - 0.2).abs() < 1e-12);
        let c = Theta::neutral(3);
        assert!(a.max_abs_diff(&c).is_err());
    }

    #[test]
    fn random_theta_is_valid_and_seeded() {
        let t1 = Theta::random(5, &mut StdRng::seed_from_u64(1));
        let t2 = Theta::random(5, &mut StdRng::seed_from_u64(1));
        assert_eq!(t1, t2);
        for s in t1.sources() {
            assert!(SourceParams::new(s.a, s.b, s.f, s.g).is_ok());
        }
    }

    #[test]
    fn classify_threshold_is_strict() {
        assert_eq!(
            classify(&[0.5000001, 0.5, 0.4999999]),
            vec![true, false, false]
        );
    }
}
