//! Dependency-aware social sensing: model, estimator, and error bounds.
//!
//! This crate implements the primary contribution of *"On Source Dependency
//! Models for Reliable Social Sensing: Algorithms and Fundamental Error
//! Bounds"* (ICDCS 2016):
//!
//! * **The source behaviour model** ([`SourceParams`], [`Theta`]): each
//!   source is described by four probabilities — `a` / `b` (rates of making
//!   *independent* claims about true / false assertions) and `f` / `g` (the
//!   same for *dependent* claims, i.e. claims whose content an ancestor
//!   asserted first) — plus the global prior `z = P(C = 1)`.
//! * **The fundamental error bound** on assertion misclassification
//!   ([`exact_bound`], Eq. 3): the Bayes risk of the *optimal* estimator
//!   with perfect knowledge of `θ` and `D`, computed exactly by a pruned
//!   enumeration of the `2^n` claim patterns, and approximated scalably by
//!   Gibbs sampling ([`gibbs_bound`], Algorithm 1 / Eq. 6).
//! * **EM-Ext** ([`EmExt`]): the practical dependency-aware
//!   maximum-likelihood estimator (Algorithm 2, Eqs. 9–14) that jointly
//!   recovers `θ` and the per-assertion truth posterior from the
//!   source-claim matrix `SC` and dependency indicators `D` alone.
//!
//! Input data is carried by [`ClaimData`] (an `SC`/`D` pair, usually built
//! from a timestamped claim log via [`ClaimData::from_claims`]).
//!
//! # Quick start
//!
//! ```
//! use socsense_core::{ClaimData, EmConfig, EmExt};
//! use socsense_graph::{FollowerGraph, TimedClaim};
//!
//! // Three sources; source 0 follows source 1.
//! let mut g = FollowerGraph::new(3);
//! g.add_follow(0, 1);
//! let claims = vec![
//!     TimedClaim::new(1, 0, 1),
//!     TimedClaim::new(0, 0, 2), // dependent repeat
//!     TimedClaim::new(2, 1, 1),
//! ];
//! let data = ClaimData::from_claims(3, 2, &claims, &g);
//!
//! let fit = EmExt::new(EmConfig::default()).fit(&data)?;
//! assert_eq!(fit.posterior.len(), 2);
//! # Ok::<(), socsense_core::SenseError>(())
//! ```

// detlint: contract = deterministic
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound;
mod cluster;
mod confidence;
mod data;
mod delta;
mod em;
mod error;
mod likelihood;
mod model;
pub mod state;
mod streaming;

pub use bound::{
    bound_for_assertions, bound_for_assertions_traced, bound_for_assertions_with, bound_for_data,
    bound_for_data_with, exact_bound, exact_bound_from_table, exact_bound_with, gibbs_bound,
    importance_bound, mismatched_decision_error, BoundMethod, BoundResult, GibbsConfig,
    GibbsEstimator, GibbsOutcome, ImportanceConfig, ImportanceOutcome,
};
pub use cluster::{cluster_partition, ClusterMembers, ClusterTracker, ClusterUpdate, ClusterWorld};
pub use confidence::{confidence_report, ConfidenceReport, RateInterval, SourceConfidence};
pub use data::ClaimData;
pub use delta::{DeltaConfig, RefitMode, RefitOutcome};
pub use em::{EmConfig, EmExt, EmFit, InitStrategy};
pub use error::SenseError;
pub use likelihood::{
    assertion_log_likelihoods, assertion_log_likelihoods_with, assertion_posteriors,
    assertion_posteriors_with, data_log_likelihood, data_log_likelihood_with, LikelihoodTables,
};
pub use model::{classify, SourceParams, Theta};
pub use state::{DeltaEngineState, EmFitBits, StreamingState, ThetaBits};
pub use streaming::{RefitStats, StreamingEstimator};

// The parallelism knob these APIs take, re-exported for convenience.
pub use socsense_matrix::parallel::Parallelism;

// The metrics handle the instrumented APIs take, re-exported so callers
// need not depend on `socsense-obs` directly for the common case.
pub use socsense_obs::{MetricsSnapshot, Obs};
