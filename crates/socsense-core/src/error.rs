//! Error type for the core estimator and bound computations.

use std::error::Error;
use std::fmt;

use socsense_matrix::MatrixError;

/// Errors produced by model construction, estimation, and bound
/// computation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SenseError {
    /// A probability parameter fell outside `[0, 1]` or was not finite.
    InvalidProbability {
        /// Parameter name (`"a"`, `"z"`, ...).
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Two jointly-used structures disagree on a dimension.
    DimensionMismatch {
        /// What disagreed.
        what: &'static str,
        /// Expected extent.
        expected: usize,
        /// Actual extent.
        actual: usize,
    },
    /// A computation requires at least one source / assertion.
    EmptyData,
    /// The exact bound was requested for more sources than the exponential
    /// enumeration supports; use the Gibbs approximation instead.
    TooManySources {
        /// Requested source count.
        n: usize,
        /// Maximum supported by the exact enumeration.
        max: usize,
    },
    /// An underlying matrix operation failed.
    Matrix(MatrixError),
    /// A configuration value was outside its valid range.
    BadConfig {
        /// Description of the violated constraint.
        what: &'static str,
    },
}

impl fmt::Display for SenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SenseError::InvalidProbability { name, value } => {
                write!(f, "parameter {name} = {value} is not a probability")
            }
            SenseError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what}: expected {expected}, got {actual}"),
            SenseError::EmptyData => write!(f, "input data is empty"),
            SenseError::TooManySources { n, max } => write!(
                f,
                "exact bound over {n} sources exceeds the enumeration limit of {max}; use the Gibbs approximation"
            ),
            SenseError::Matrix(e) => write!(f, "matrix error: {e}"),
            SenseError::BadConfig { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl Error for SenseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SenseError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatrixError> for SenseError {
    fn from(e: MatrixError) -> Self {
        SenseError::Matrix(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = SenseError::TooManySources { n: 40, max: 30 };
        assert!(e.to_string().contains("40"));
        let m = MatrixError::BadBacking {
            expected: 4,
            actual: 2,
        };
        let wrapped: SenseError = m.into();
        assert!(wrapped.source().is_some());
        assert!(wrapped.to_string().contains("matrix error"));
    }
}
