//! Confidence intervals on the estimated source parameters.
//!
//! The paper's related work (Wang et al., SECON 2012) quantifies how much
//! to trust the *estimates themselves* via Cramér–Rao-style bounds. This
//! module provides the practical equivalent for the dependency-aware
//! model: each rate in `θ̂` is a posterior-weighted Bernoulli frequency
//! `num / den`, so its asymptotic standard error is
//! `sqrt(p̂(1-p̂) / den)` — `den` playing the role of the effective sample
//! size for that parameter. Wald intervals built from these match the
//! CRLB for a Bernoulli rate and make the per-source uncertainty visible:
//! a source with three observed claims gets an appropriately enormous
//! interval around its `â`.

use serde::{Deserialize, Serialize};

use crate::data::ClaimData;
use crate::error::SenseError;
use crate::model::Theta;

/// A symmetric Wald interval around one estimated rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Standard error `sqrt(p̂(1-p̂)/n_eff)`; infinite when the parameter
    /// had no effective observations.
    pub std_error: f64,
    /// Effective sample size (posterior-weighted cell count).
    pub effective_n: f64,
    /// Interval lower bound, clamped to `[0, 1]`.
    pub lo: f64,
    /// Interval upper bound, clamped to `[0, 1]`.
    pub hi: f64,
}

impl RateInterval {
    fn new(estimate: f64, effective_n: f64, zcrit: f64) -> Self {
        let std_error = if effective_n > 0.0 {
            (estimate * (1.0 - estimate) / effective_n).sqrt()
        } else {
            f64::INFINITY
        };
        let half = zcrit * std_error;
        Self {
            estimate,
            std_error,
            effective_n,
            lo: (estimate - half).clamp(0.0, 1.0),
            hi: (estimate + half).clamp(0.0, 1.0),
        }
    }

    /// Whether the interval covers `value`.
    pub fn covers(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }

    /// Interval width (`hi - lo`).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Per-source confidence intervals for all four rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceConfidence {
    /// Interval for `a` (independent claims on true assertions).
    pub a: RateInterval,
    /// Interval for `b`.
    pub b: RateInterval,
    /// Interval for `f` (dependent claims on true assertions).
    pub f: RateInterval,
    /// Interval for `g`.
    pub g: RateInterval,
}

/// Confidence report for a fitted model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceReport {
    /// One entry per source, in source order.
    pub sources: Vec<SourceConfidence>,
    /// z critical value the intervals used (1.96 for 95%).
    pub z_critical: f64,
}

/// Builds Wald intervals for every source parameter of a fitted `θ̂`.
///
/// `posterior` must be the truth posteriors the fit produced (its length
/// defines the effective-sample weighting); `confidence` is the two-sided
/// level, e.g. `0.95`.
///
/// # Errors
///
/// * [`SenseError::DimensionMismatch`] — `theta`/`posterior` do not match
///   `data`.
/// * [`SenseError::InvalidProbability`] — `confidence` outside `(0, 1)`.
///
/// # Example
///
/// ```
/// use socsense_core::{confidence_report, ClaimData, EmConfig, EmExt};
/// use socsense_matrix::SparseBinaryMatrix;
///
/// let sc = SparseBinaryMatrix::from_entries(2, 4, [(0, 0), (0, 1), (1, 2)]);
/// let data = ClaimData::new(sc, SparseBinaryMatrix::empty(2, 4))?;
/// let fit = EmExt::new(EmConfig::default()).fit(&data)?;
/// let report = confidence_report(&data, &fit.theta, &fit.posterior, 0.95)?;
/// assert_eq!(report.sources.len(), 2);
/// // Four assertions cannot pin a rate tightly: the interval is wide.
/// assert!(report.sources[0].a.width() > 0.2);
/// # Ok::<(), socsense_core::SenseError>(())
/// ```
pub fn confidence_report(
    data: &ClaimData,
    theta: &Theta,
    posterior: &[f64],
    confidence: f64,
) -> Result<ConfidenceReport, SenseError> {
    if theta.source_count() != data.source_count() {
        return Err(SenseError::DimensionMismatch {
            what: "theta source count vs data",
            expected: data.source_count(),
            actual: theta.source_count(),
        });
    }
    if posterior.len() != data.assertion_count() {
        return Err(SenseError::DimensionMismatch {
            what: "posterior length vs assertion count",
            expected: data.assertion_count(),
            actual: posterior.len(),
        });
    }
    if !(0.0 < confidence && confidence < 1.0) {
        return Err(SenseError::InvalidProbability {
            name: "confidence",
            value: confidence,
        });
    }
    let zcrit = z_critical(confidence);
    let sum_z: f64 = posterior.iter().sum();
    let sum_y = data.assertion_count() as f64 - sum_z;

    let mut sources = Vec::with_capacity(data.source_count());
    for i in 0..data.source_count() as u32 {
        let mut dep_z = 0.0;
        let mut dep_cells = 0usize;
        for &j in data.d().row(i) {
            dep_z += posterior[j as usize];
            dep_cells += 1;
        }
        let dep_y = dep_cells as f64 - dep_z;
        let s = theta.source(i as usize);
        sources.push(SourceConfidence {
            a: RateInterval::new(s.a, sum_z - dep_z, zcrit),
            b: RateInterval::new(s.b, sum_y - dep_y, zcrit),
            f: RateInterval::new(s.f, dep_z, zcrit),
            g: RateInterval::new(s.g, dep_y, zcrit),
        });
    }
    Ok(ConfidenceReport {
        sources,
        z_critical: zcrit,
    })
}

/// Two-sided normal critical value via a rational approximation of the
/// probit function (Beasley–Springer–Moro); accurate to ~1e-7 over the
/// levels used in practice.
fn z_critical(confidence: f64) -> f64 {
    let p = 0.5 + confidence / 2.0;
    probit(p)
}

fn probit(p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    // Beasley-Springer-Moro coefficients.
    const A: [f64; 4] = [
        2.50662823884,
        -18.61500062529,
        41.39119773534,
        -25.44106049637,
    ];
    const B: [f64; 4] = [
        -8.47351093090,
        23.08336743743,
        -21.06224101826,
        3.13082909833,
    ];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = p - 0.5;
    if y.abs() < 0.42 {
        let r = y * y;
        let num = y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0]);
        let den = (((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0;
        return num / den;
    }
    let r = if y > 0.0 { 1.0 - p } else { p };
    let s = (-(r.max(1e-300)).ln()).ln();
    let mut x = C[0];
    let mut pow = 1.0;
    for &c in &C[1..] {
        pow *= s;
        x += c * pow;
    }
    if y < 0.0 {
        -x
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::{EmConfig, EmExt};
    use socsense_matrix::SparseBinaryMatrix;

    #[test]
    fn z_critical_matches_standard_table() {
        assert!((z_critical(0.95) - 1.959964).abs() < 1e-3);
        assert!((z_critical(0.90) - 1.644854).abs() < 1e-3);
        assert!((z_critical(0.99) - 2.575829).abs() < 1e-3);
    }

    #[test]
    #[cfg_attr(miri, ignore = "100-assertion EM fit is too slow under Miri")]
    fn more_data_tightens_intervals() {
        // Same claim pattern replicated over 10 vs 100 assertions.
        let build = |m: u32| {
            let entries: Vec<(u32, u32)> =
                (0..m).filter(|j| j % 2 == 0).map(|j| (0u32, j)).collect();
            let sc = SparseBinaryMatrix::from_entries(2, m, entries);
            ClaimData::new(sc, SparseBinaryMatrix::empty(2, m)).unwrap()
        };
        let small = build(10);
        let big = build(100);
        let fit_s = EmExt::new(EmConfig::default()).fit(&small).unwrap();
        let fit_b = EmExt::new(EmConfig::default()).fit(&big).unwrap();
        let rep_s = confidence_report(&small, &fit_s.theta, &fit_s.posterior, 0.95).unwrap();
        let rep_b = confidence_report(&big, &fit_b.theta, &fit_b.posterior, 0.95).unwrap();
        assert!(
            rep_b.sources[0].a.width() < rep_s.sources[0].a.width(),
            "big-data width {:.3} should beat small-data width {:.3}",
            rep_b.sources[0].a.width(),
            rep_s.sources[0].a.width()
        );
    }

    #[test]
    fn unobserved_parameters_have_infinite_uncertainty() {
        // No dependent cells at all: f and g are unconstrained.
        let sc = SparseBinaryMatrix::from_entries(2, 5, [(0, 0), (1, 1)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(2, 5)).unwrap();
        let fit = EmExt::new(EmConfig::default()).fit(&data).unwrap();
        let rep = confidence_report(&data, &fit.theta, &fit.posterior, 0.95).unwrap();
        for s in &rep.sources {
            assert_eq!(s.f.effective_n, 0.0);
            assert!(s.f.std_error.is_infinite());
            assert_eq!((s.f.lo, s.f.hi), (0.0, 1.0));
        }
    }

    #[test]
    fn report_validates_inputs() {
        let sc = SparseBinaryMatrix::from_entries(2, 3, [(0, 0)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(2, 3)).unwrap();
        let fit = EmExt::new(EmConfig::default()).fit(&data).unwrap();
        assert!(confidence_report(&data, &fit.theta, &fit.posterior, 1.5).is_err());
        assert!(confidence_report(&data, &fit.theta, &[0.5], 0.95).is_err());
        let wrong = Theta::neutral(5);
        assert!(confidence_report(&data, &wrong, &fit.posterior, 0.95).is_err());
    }

    #[test]
    fn covers_is_consistent_with_bounds() {
        let iv = RateInterval::new(0.5, 100.0, 1.96);
        assert!(iv.covers(0.5));
        assert!(iv.covers(iv.lo) && iv.covers(iv.hi));
        assert!(!iv.covers(iv.hi + 0.01));
        assert!((iv.width() - 2.0 * 1.96 * iv.std_error).abs() < 1e-12);
    }
}
