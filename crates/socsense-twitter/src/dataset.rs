//! The packaged simulated dataset and its Table III-style summary.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use socsense_core::ClaimData;
use socsense_graph::{FollowerGraph, TimedClaim};

use crate::config::{ScenarioConfig, TwitterError};
use crate::sim;
use crate::TruthValue;

/// One simulated tweet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tweet {
    /// Unique id, increasing with creation order.
    pub id: u64,
    /// Tweeting account.
    pub source: u32,
    /// The assertion the tweet expresses.
    pub assertion: u32,
    /// Simulation tick.
    pub time: u64,
    /// `Some(original)` when this tweet is a retweet in the cascade.
    pub retweet_of: Option<u64>,
    /// Synthesized tweet text (noisy rendering of the assertion).
    pub text: String,
}

/// A complete simulated collection campaign.
///
/// Serialisable: persist a campaign with any serde format (e.g.
/// `serde_json`) to re-grade algorithms on the identical crawl later.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwitterDataset {
    /// Scenario label.
    pub name: String,
    /// All tweets in time order.
    pub tweets: Vec<Tweet>,
    /// The follower graph behind the cascades.
    pub graph: FollowerGraph,
    /// Ground-truth label per assertion id.
    pub truth: Vec<TruthValue>,
    n_sources: u32,
    n_assertions: u32,
}

/// One Table III row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Scenario label.
    pub name: String,
    /// Distinct assertions actually tweeted.
    pub assertions: usize,
    /// Distinct accounts that tweeted.
    pub sources: usize,
    /// Distinct `(source, assertion)` claims.
    pub total_claims: usize,
    /// Claims whose earliest tweet was not a retweet.
    pub original_claims: usize,
}

impl TwitterDataset {
    /// Runs the cascade simulation for `cfg` with the given seed.
    ///
    /// # Errors
    ///
    /// Returns [`TwitterError`] if the configuration fails validation.
    pub fn simulate(cfg: &ScenarioConfig, seed: u64) -> Result<Self, TwitterError> {
        cfg.validate()?;
        let out = sim::run(cfg, seed);
        Ok(Self {
            name: cfg.name.clone(),
            tweets: out.tweets,
            graph: out.graph,
            truth: out.truth,
            n_sources: cfg.n_sources,
            n_assertions: cfg.n_assertions,
        })
    }

    /// Number of accounts in the simulated crawl (tweeting or not).
    pub fn source_count(&self) -> u32 {
        self.n_sources
    }

    /// Number of assertions in the simulated world (tweeted or not).
    pub fn assertion_count(&self) -> u32 {
        self.n_assertions
    }

    /// Ground-truth label of one assertion.
    ///
    /// # Panics
    ///
    /// Panics if `assertion` is out of range.
    pub fn truth_value(&self, assertion: u32) -> TruthValue {
        self.truth[assertion as usize]
    }

    /// The tweets as timestamped claims for
    /// [`socsense_graph::build_matrices`].
    pub fn timed_claims(&self) -> Vec<TimedClaim> {
        self.tweets
            .iter()
            .map(|t| TimedClaim::new(t.source, t.assertion, t.time))
            .collect()
    }

    /// Builds the estimator input (`SC`/`D`) from tweets + follow graph.
    ///
    /// Retweet cascades become dependent claims automatically: the
    /// retweeter follows the earlier tweeter, so the who-spoke-first rule
    /// marks the cell dependent.
    pub fn claim_data(&self) -> ClaimData {
        ClaimData::from_claims(
            self.n_sources,
            self.n_assertions,
            &self.timed_claims(),
            &self.graph,
        )
    }

    /// The follower-graph edges a claim-log-only method could possibly
    /// recover: `(follower, followee)` pairs that co-claimed at least
    /// `min_shared` distinct assertions. The simulated graph contains
    /// many follow edges never exercised by a cascade; dependency
    /// discovery is scored against this recoverable subset (clearly
    /// labelled as such in the eval tables).
    pub fn recoverable_edges(&self, min_shared: usize) -> Vec<(u32, u32)> {
        let mut claimed: Vec<std::collections::BTreeSet<u32>> =
            vec![std::collections::BTreeSet::new(); self.n_sources as usize];
        for t in &self.tweets {
            claimed[t.source as usize].insert(t.assertion);
        }
        self.graph
            .edges()
            .filter(|&(follower, followee)| {
                claimed[follower as usize]
                    .intersection(&claimed[followee as usize])
                    .count()
                    >= min_shared
            })
            .collect()
    }

    /// Table III-style statistics of the generated campaign.
    pub fn summary(&self) -> DatasetSummary {
        // Earliest tweet per (source, assertion) decides originality.
        // BTreeMap: the keys()/values() walks below must not depend on
        // hash-iteration order.
        let mut first: BTreeMap<(u32, u32), &Tweet> = BTreeMap::new();
        for t in &self.tweets {
            first
                .entry((t.source, t.assertion))
                .and_modify(|cur| {
                    if t.time < cur.time {
                        *cur = t;
                    }
                })
                .or_insert(t);
        }
        let mut sources: Vec<u32> = first.keys().map(|&(s, _)| s).collect();
        sources.sort_unstable();
        sources.dedup();
        let mut assertions: Vec<u32> = first.keys().map(|&(_, a)| a).collect();
        assertions.sort_unstable();
        assertions.dedup();
        let original_claims = first.values().filter(|t| t.retweet_of.is_none()).count();
        DatasetSummary {
            name: self.name.clone(),
            assertions: assertions.len(),
            sources: sources.len(),
            total_claims: first.len(),
            original_claims,
        }
    }
}

impl DatasetSummary {
    /// Fraction of claims that are original (non-retweet).
    pub fn original_ratio(&self) -> f64 {
        if self.total_claims == 0 {
            0.0
        } else {
            self.original_claims as f64 / self.total_claims as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TwitterDataset {
        TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(0.03), 11).unwrap()
    }

    #[test]
    fn summary_counts_are_consistent() {
        let ds = small();
        let s = ds.summary();
        assert!(s.total_claims >= s.original_claims);
        assert!(s.original_claims > 0);
        assert!(s.sources <= ds.source_count() as usize);
        assert!(s.assertions <= ds.assertion_count() as usize);
        assert_eq!(s.total_claims, ds.claim_data().claim_count());
        assert!((0.0..=1.0).contains(&s.original_ratio()));
    }

    #[test]
    fn claim_data_marks_retweets_dependent() {
        let ds = small();
        let data = ds.claim_data();
        // Every retweet is a dependent claim of its source.
        let mut checked = 0;
        for t in &ds.tweets {
            if t.retweet_of.is_some() {
                // Dependent unless this source *also* tweeted the assertion
                // earlier as an original (dedup keeps the earliest tick).
                if ds
                    .tweets
                    .iter()
                    .filter(|u| u.source == t.source && u.assertion == t.assertion)
                    .count()
                    == 1
                {
                    assert!(
                        data.dependent(t.source, t.assertion),
                        "retweet ({}, {}) not dependent",
                        t.source,
                        t.assertion
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "scenario produced no retweets to check");
    }

    #[test]
    fn rumors_cascade_more_than_facts() {
        // With rumor_boost > 1 and moderate verification, the average
        // false assertion should collect at least as many dependent claims
        // as the average true one.
        let mut cfg = ScenarioConfig::ukraine().scaled(0.05);
        cfg.rumor_boost = 3.0;
        cfg.verify_prob = 0.1;
        cfg.retweet_prob = 0.2;
        // Rumors have fewer originators but spread harder, so compare
        // retweets *per original tweet*. Follower counts are heavy-tailed,
        // so average over several seeds to wash out hub placement luck.
        let (mut rt_false, mut orig_false, mut rt_true, mut orig_true) =
            (0usize, 0usize, 0usize, 0usize);
        for seed in 0..6u64 {
            let ds = TwitterDataset::simulate(&cfg, seed).unwrap();
            for t in &ds.tweets {
                let is_rt = t.retweet_of.is_some();
                match ds.truth_value(t.assertion) {
                    TruthValue::False => {
                        if is_rt {
                            rt_false += 1;
                        } else {
                            orig_false += 1;
                        }
                    }
                    TruthValue::True => {
                        if is_rt {
                            rt_true += 1;
                        } else {
                            orig_true += 1;
                        }
                    }
                    TruthValue::Opinion => {}
                }
            }
        }
        let per_false = rt_false as f64 / orig_false.max(1) as f64;
        let per_true = rt_true as f64 / orig_true.max(1) as f64;
        assert!(
            per_false > per_true,
            "rumors {per_false:.2} vs facts {per_true:.2} retweets/original"
        );
    }

    #[test]
    fn paris_preset_is_mostly_original() {
        let ds = TwitterDataset::simulate(&ScenarioConfig::paris_attack().scaled(0.01), 3).unwrap();
        let s = ds.summary();
        assert!(
            s.original_ratio() > 0.8,
            "paris should be original-heavy, got {:.2}",
            s.original_ratio()
        );
    }

    #[test]
    fn ukraine_preset_ratio_matches_table_iii_shape() {
        // Paper: 4242 / 7192 ≈ 0.59 original. Accept a generous band.
        let ds = TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(0.1), 19).unwrap();
        let r = ds.summary().original_ratio();
        assert!((0.4..=0.8).contains(&r), "original ratio {r:.2}");
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn dataset_round_trips_through_json() {
        let ds = TwitterDataset::simulate(&ScenarioConfig::kirkuk().scaled(0.01), 4).unwrap();
        let json = serde_json::to_string(&ds).unwrap();
        let back: TwitterDataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds, back);
        assert_eq!(back.claim_data(), ds.claim_data());
    }
}
