//! The event-driven cascade simulation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{HashSet, VecDeque};

use socsense_graph::{preferential_attachment, FollowerGraph};

use crate::config::ScenarioConfig;
use crate::dataset::Tweet;
use crate::text::TextSynthesizer;
use crate::TruthValue;

/// Raw simulation output before packaging into a `TwitterDataset`.
pub(crate) struct SimOutput {
    pub graph: FollowerGraph,
    pub truth: Vec<TruthValue>,
    pub tweets: Vec<Tweet>,
}

/// Knuth's Poisson sampler; fine for the small means used here.
fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // pathological lambda guard
        }
    }
}

pub(crate) fn run(cfg: &ScenarioConfig, seed: u64) -> SimOutput {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.n_sources;
    let m = cfg.n_assertions;

    // Follower topology.
    let graph = preferential_attachment(n, cfg.attach_k, &mut rng);

    // Ground truth: opinions first, then true/false split of the rest.
    let n_opinion = (cfg.opinion_frac * m as f64).round() as u32;
    let n_true = (cfg.true_frac * (m - n_opinion) as f64).round() as u32;
    let mut truth: Vec<TruthValue> = Vec::with_capacity(m as usize);
    for j in 0..m {
        truth.push(if j < n_opinion {
            TruthValue::Opinion
        } else if j < n_opinion + n_true {
            TruthValue::True
        } else {
            TruthValue::False
        });
    }
    truth.shuffle(&mut rng);

    // Heavy-tailed witnessing propensity, per-source honesty (the stable
    // reliability trait the estimators recover as a_i / b_i), and
    // gullibility (how readily a source passes things on unverified).
    let activity: Vec<f64> = (0..n)
        .map(|_| -(1.0 - rng.gen::<f64>()).ln()) // Exp(1)
        .collect();
    let total_activity: f64 = activity.iter().sum();
    let honesty: Vec<f64> = (0..n).map(|_| rng.gen_range(0.25..0.95)).collect();
    let gullibility: Vec<f64> = (0..n).map(|_| rng.gen_range(0.3..1.0)).collect();
    // Verification is a stable per-source *trait*, not a coin flipped per
    // exposure: a minority of habitual fact-checkers (v = 0.9) among
    // mostly non-verifiers (v = 0.05), mixed to preserve the configured
    // mean. This is what gives dependent claims per-source
    // informativeness (a verifier's retweet almost certifies truth) — the
    // signal EM-Ext's f/g parameters exist to capture.
    let verifier_frac = ((cfg.verify_prob - 0.05) / 0.85).clamp(0.0, 1.0);
    let verify_trait: Vec<f64> = (0..n)
        .map(|_| {
            if rng.gen_bool(verifier_frac) {
                0.9
            } else {
                0.05
            }
        })
        .collect();
    // Retweeting propensity is concentrated, as on real Twitter: ~20% of
    // accounts do the vast majority of the retweeting (mean multiplier
    // 1.0, so the calibrated original/total claim ratios are preserved).
    // Concentration is what makes a retweeter's dependent behaviour
    // (f_i, g_i) statistically identifiable from its several retweets.
    let retweet_activity: Vec<f64> = (0..n)
        .map(|_| if rng.gen_bool(0.2) { 4.0 } else { 0.25 })
        .collect();

    // Cumulative distribution for witness sampling.
    let mut cdf = Vec::with_capacity(n as usize);
    let mut acc = 0.0;
    for &a in &activity {
        acc += a / total_activity;
        cdf.push(acc);
    }
    let sample_source = |rng: &mut StdRng| -> u32 {
        let u: f64 = rng.gen();
        match cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) | Err(i) => (i as u32).min(n - 1),
        }
    };

    let text = TextSynthesizer::new(&cfg.name, seed ^ 0x5eed);
    let mut tweets: Vec<Tweet> = Vec::new();
    let mut said: HashSet<(u32, u32)> = HashSet::new();
    let mut next_id = 0u64;
    let horizon = (m as u64) * 10;

    for j in 0..m {
        let label = truth[j as usize];
        let witness_lambda = match label {
            TruthValue::True => cfg.witness_mean * cfg.true_witness_boost,
            TruthValue::False => cfg.witness_mean * cfg.rumor_witness_damp,
            TruthValue::Opinion => cfg.witness_mean,
        };
        let witnesses = 1 + poisson((witness_lambda - 1.0).max(0.0), &mut rng);
        let t0 = rng.gen_range(0..horizon);
        // Original tweets. Witnesses are drawn by activity, then accepted
        // by honesty: honest sources originate true reports, dishonest
        // ones originate rumors. Opinions are honesty-neutral.
        let mut frontier: VecDeque<(u64, u32, u64, u32)> = VecDeque::new(); // (tweet id, source, time, depth)
        for w in 0..witnesses {
            let mut s = sample_source(&mut rng);
            for _ in 0..8 {
                let accept = match label {
                    TruthValue::True => honesty[s as usize],
                    TruthValue::False => 1.0 - honesty[s as usize],
                    TruthValue::Opinion => 1.0,
                };
                if rng.gen_bool(accept) {
                    break;
                }
                s = sample_source(&mut rng);
            }
            if !said.insert((s, j)) {
                continue;
            }
            let t = t0 + w as u64;
            let tw = Tweet {
                id: next_id,
                source: s,
                assertion: j,
                time: t,
                retweet_of: None,
                text: text.render(j, false, &mut rng),
            };
            frontier.push_back((tw.id, s, t, 0));
            tweets.push(tw);
            next_id += 1;
        }
        // Cascade through followers.
        while let Some((orig_id, tweeter, t, depth)) = frontier.pop_front() {
            if depth >= cfg.max_cascade_depth {
                continue;
            }
            for &f in graph.followers(tweeter) {
                if said.contains(&(f, j)) {
                    continue;
                }
                let activity = retweet_activity[f as usize];
                let passes = if rng.gen_bool(verify_trait[f as usize]) {
                    // Verifier: passes on truths with the base rate,
                    // never passes on rumors; opinions are unverifiable
                    // and travel at the base rate.
                    match label {
                        TruthValue::False => false,
                        TruthValue::True | TruthValue::Opinion => {
                            rng.gen_bool((cfg.retweet_prob * activity).min(1.0))
                        }
                    }
                } else {
                    // Unverified pass-along; rumors spread faster, and
                    // less honest sources amplify them harder.
                    let boost = if label == TruthValue::False {
                        cfg.rumor_boost * (1.5 - honesty[f as usize])
                    } else {
                        1.0
                    };
                    let p =
                        (cfg.retweet_prob * gullibility[f as usize] * boost * activity).min(1.0);
                    rng.gen_bool(p)
                };
                if !passes {
                    continue;
                }
                said.insert((f, j));
                let t_new = t + 1 + rng.gen_range(0..5);
                let tw = Tweet {
                    id: next_id,
                    source: f,
                    assertion: j,
                    time: t_new,
                    retweet_of: Some(orig_id),
                    text: text.render(j, true, &mut rng),
                };
                frontier.push_back((tw.id, f, t_new, depth + 1));
                tweets.push(tw);
                next_id += 1;
            }
        }
    }

    tweets.sort_by_key(|t| (t.time, t.id));
    SimOutput {
        graph,
        truth,
        tweets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let lambda = 2.5;
        let k = 5000;
        let sum: u64 = (0..k).map(|_| poisson(lambda, &mut rng) as u64).sum();
        let mean = sum as f64 / k as f64;
        assert!((mean - lambda).abs() < 0.15, "mean {mean}");
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn every_assertion_gets_at_least_one_witness_attempt() {
        let cfg = ScenarioConfig::kirkuk().scaled(0.02);
        let out = run(&cfg, 3);
        // Each assertion draws >= 1 witness; collisions can drop a few,
        // but the vast majority must be present.
        let covered: HashSet<u32> = out.tweets.iter().map(|t| t.assertion).collect();
        assert!(
            covered.len() as f64 > 0.9 * cfg.n_assertions as f64,
            "covered {}/{}",
            covered.len(),
            cfg.n_assertions
        );
    }

    #[test]
    fn retweets_reference_existing_earlier_tweets() {
        let cfg = ScenarioConfig::ukraine().scaled(0.05);
        let out = run(&cfg, 9);
        let by_id: std::collections::HashMap<u64, &Tweet> =
            out.tweets.iter().map(|t| (t.id, t)).collect();
        for t in &out.tweets {
            if let Some(orig) = t.retweet_of {
                let o = by_id.get(&orig).expect("retweet target exists");
                assert_eq!(o.assertion, t.assertion);
                assert!(o.time < t.time, "retweet precedes original");
                // The retweeter transitively follows someone in the
                // cascade; immediate parent is a followee.
                assert!(out.graph.follows(t.source, o.source));
            }
        }
    }

    #[test]
    fn no_source_repeats_an_assertion() {
        let cfg = ScenarioConfig::superbug().scaled(0.02);
        let out = run(&cfg, 17);
        let mut seen = HashSet::new();
        for t in &out.tweets {
            assert!(seen.insert((t.source, t.assertion)), "duplicate claim");
        }
    }

    #[test]
    fn truth_partition_matches_fractions() {
        let cfg = ScenarioConfig::ukraine().scaled(0.1);
        let out = run(&cfg, 5);
        let m = cfg.n_assertions as f64;
        let opinions = out
            .truth
            .iter()
            .filter(|t| **t == TruthValue::Opinion)
            .count() as f64;
        let trues = out.truth.iter().filter(|t| **t == TruthValue::True).count() as f64;
        assert!((opinions / m - cfg.opinion_frac).abs() < 0.02);
        assert!((trues / (m - opinions) - cfg.true_frac).abs() < 0.02);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ScenarioConfig::la_marathon().scaled(0.02);
        let a = run(&cfg, 42);
        let b = run(&cfg, 42);
        assert_eq!(a.tweets.len(), b.tweets.len());
        assert_eq!(a.truth, b.truth);
        for (x, y) in a.tweets.iter().zip(&b.tweets) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.text, y.text);
        }
    }
}
