//! Scenario configuration and the five Table III presets.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Parameters of one simulated collection campaign.
///
/// The five constructors ([`ukraine`](Self::ukraine) etc.) are calibrated
/// so that the *scale* of the generated [`DatasetSummary`](crate::DatasetSummary)
/// matches the corresponding Table
/// III row: source and assertion counts are taken verbatim, and
/// `witness_mean` / `retweet_prob` are tuned to land near the paper's
/// original-to-total claim ratio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Scenario label (Table III row name).
    pub name: String,
    /// Accounts in the crawl.
    pub n_sources: u32,
    /// Distinct assertions circulating during the campaign.
    pub n_assertions: u32,
    /// Fraction of *verifiable* assertions that are true events (the rest
    /// are rumors).
    pub true_frac: f64,
    /// Fraction of all assertions that are opinions.
    pub opinion_frac: f64,
    /// Followees per joining account (preferential attachment degree).
    pub attach_k: u32,
    /// Mean independent witnesses (original tweeters) per assertion.
    pub witness_mean: f64,
    /// Base probability that an exposed follower retweets.
    pub retweet_prob: f64,
    /// Virality multiplier applied to rumors (false assertions spread
    /// faster — the empirically observed asymmetry that makes dependency
    /// modelling matter).
    pub rumor_boost: f64,
    /// Probability an exposed follower fact-checks before retweeting; a
    /// verifier never passes on a rumor and always passes on a true event.
    pub verify_prob: f64,
    /// Cascade depth cap (retweets of retweets of ...).
    pub max_cascade_depth: u32,
    /// Witness-count multiplier for true events (real happenings have
    /// more independent observers).
    pub true_witness_boost: f64,
    /// Witness-count multiplier for rumors (few originators, viral
    /// spread) — together with `rumor_boost` this creates the
    /// high-dependent-support signature of misinformation.
    pub rumor_witness_damp: f64,
}

impl ScenarioConfig {
    fn base(
        name: &str,
        n_sources: u32,
        n_assertions: u32,
        witness_mean: f64,
        retweet_prob: f64,
    ) -> Self {
        Self {
            name: name.to_owned(),
            n_sources,
            n_assertions,
            true_frac: 0.6,
            opinion_frac: 0.15,
            attach_k: 3,
            witness_mean,
            retweet_prob,
            rumor_boost: 1.1,
            verify_prob: 0.40,
            max_cascade_depth: 4,
            true_witness_boost: 1.4,
            rumor_witness_damp: 0.5,
        }
    }

    /// Putin-disappearance rumors, March 2015 (Table III row 1):
    /// 5403 sources, 3703 assertions, 59% original claims.
    pub fn ukraine() -> Self {
        Self::base("Ukraine", 5403, 3703, 1.15, 0.22)
    }

    /// Kurdish offensive around Kirkuk, March 2015 (row 2):
    /// 4816 sources, 2795 assertions, 50% original claims.
    pub fn kirkuk() -> Self {
        Self::base("Kirkuk", 4816, 2795, 1.10, 0.34)
    }

    /// LA "superbug" infections, March 2015 (row 3):
    /// 7764 sources, 2873 assertions, 62% original claims.
    pub fn superbug() -> Self {
        Self::base("Superbug", 7764, 2873, 2.03, 0.20)
    }

    /// 2015 Los Angeles Marathon (row 4):
    /// 5174 sources, 3537 assertions, 61% original claims. An in-person
    /// event: many direct witnesses, few rumors.
    pub fn la_marathon() -> Self {
        let mut c = Self::base("LA Marathon", 5174, 3537, 1.22, 0.175);
        c.true_frac = 0.75;
        c.rumor_boost = 1.05;
        c
    }

    /// November 13 Paris attacks (row 5): 38844 sources, 23513
    /// assertions, 94% original claims — a breaking catastrophe where
    /// nearly everyone reports first-hand or from news rather than
    /// retweeting within the crawl window.
    pub fn paris_attack() -> Self {
        let mut c = Self::base("Paris Attack", 38844, 23513, 1.65, 0.02);
        c.true_frac = 0.55;
        c.rumor_boost = 1.3;
        c.max_cascade_depth = 2;
        c
    }

    /// All five presets in Table III order.
    pub fn all_presets() -> Vec<ScenarioConfig> {
        vec![
            Self::ukraine(),
            Self::kirkuk(),
            Self::superbug(),
            Self::la_marathon(),
            Self::paris_attack(),
        ]
    }

    /// Returns a proportionally shrunk (or grown) copy: source and
    /// assertion counts are multiplied by `factor` (minimum 2 sources /
    /// 2 assertions). Cascade behaviour is unchanged. Use small factors
    /// to keep unit tests fast.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive, got {factor}"
        );
        let mut c = self.clone();
        c.n_sources = ((self.n_sources as f64 * factor).round() as u32).max(2);
        c.n_assertions = ((self.n_assertions as f64 * factor).round() as u32).max(2);
        c
    }

    /// Validates all probabilities and counts.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), TwitterError> {
        if self.n_sources < 2 || self.n_assertions < 1 {
            return Err(TwitterError::BadShape {
                sources: self.n_sources,
                assertions: self.n_assertions,
            });
        }
        for (name, v) in [
            ("true_frac", self.true_frac),
            ("opinion_frac", self.opinion_frac),
            ("retweet_prob", self.retweet_prob),
            ("verify_prob", self.verify_prob),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(TwitterError::BadProbability { name, value: v });
            }
        }
        if self.witness_mean <= 0.0 || !self.witness_mean.is_finite() {
            return Err(TwitterError::BadParameter {
                what: "witness_mean must be positive",
            });
        }
        if self.rumor_boost < 0.0 || !self.rumor_boost.is_finite() {
            return Err(TwitterError::BadParameter {
                what: "rumor_boost must be non-negative",
            });
        }
        for (what, v) in [
            (
                "true_witness_boost must be positive",
                self.true_witness_boost,
            ),
            (
                "rumor_witness_damp must be positive",
                self.rumor_witness_damp,
            ),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(TwitterError::BadParameter { what });
            }
        }
        if self.attach_k == 0 {
            return Err(TwitterError::BadParameter {
                what: "attach_k must be positive",
            });
        }
        Ok(())
    }
}

/// Errors from scenario configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TwitterError {
    /// Too few sources or assertions.
    BadShape {
        /// Configured sources.
        sources: u32,
        /// Configured assertions.
        assertions: u32,
    },
    /// A probability escaped `[0, 1]`.
    BadProbability {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Some other parameter constraint was violated.
    BadParameter {
        /// Description.
        what: &'static str,
    },
}

impl fmt::Display for TwitterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwitterError::BadShape {
                sources,
                assertions,
            } => write!(
                f,
                "scenario needs >= 2 sources and >= 1 assertion, got {sources}/{assertions}"
            ),
            TwitterError::BadProbability { name, value } => {
                write!(f, "{name} = {value} is not a probability")
            }
            TwitterError::BadParameter { what } => write!(f, "{what}"),
        }
    }
}

impl Error for TwitterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_match_table_iii_scale() {
        let presets = ScenarioConfig::all_presets();
        assert_eq!(presets.len(), 5);
        for p in &presets {
            p.validate().unwrap();
        }
        assert_eq!(presets[0].n_sources, 5403);
        assert_eq!(presets[4].n_assertions, 23513);
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let s = ScenarioConfig::ukraine().scaled(0.1);
        assert_eq!(s.n_sources, 540);
        assert_eq!(s.n_assertions, 370);
        s.validate().unwrap();
        // Tiny factors floor at 2.
        let t = ScenarioConfig::ukraine().scaled(1e-9);
        assert_eq!(t.n_sources, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        ScenarioConfig::ukraine().scaled(0.0);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = ScenarioConfig::ukraine();
        c.retweet_prob = 1.5;
        assert!(matches!(
            c.validate(),
            Err(TwitterError::BadProbability {
                name: "retweet_prob",
                ..
            })
        ));
        let mut c = ScenarioConfig::ukraine();
        c.witness_mean = 0.0;
        assert!(c.validate().is_err());
        let mut c = ScenarioConfig::ukraine();
        c.n_sources = 1;
        assert!(matches!(c.validate(), Err(TwitterError::BadShape { .. })));
        let mut c = ScenarioConfig::ukraine();
        c.attach_k = 0;
        assert!(c.validate().is_err());
    }
}
