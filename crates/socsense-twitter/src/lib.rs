//! A simulated Twitter substrate replacing the paper's proprietary
//! 2015 datasets (Table III / Fig. 11).
//!
//! The paper evaluates on five crawled Twitter datasets that are no longer
//! available (the Apollo download site is dead). Per the substitution rule
//! in `DESIGN.md` §5, this crate builds the closest synthetic equivalent
//! that exercises the same code paths:
//!
//! * a **follower graph** grown by preferential attachment (heavy-tailed,
//!   hub-dominated — the regime where retweet cascades create the
//!   correlated errors the paper's estimator targets);
//! * an **event model**: assertions are true events, false rumors, or
//!   opinions ([`TruthValue`]); witnesses tweet originals, followers
//!   retweet what they see, rumors spread with a configurable virality
//!   boost, and some users verify before retweeting;
//! * **noisy tweet text** per assertion so the Apollo pipeline's
//!   clustering stage has something real to do;
//! * five [`ScenarioConfig`] presets calibrated to Table III's scale
//!   (source counts, assertion counts, original-to-total claim ratios).
//!
//! The output, [`TwitterDataset`], converts directly into the estimator's
//! [`ClaimData`](socsense_core::ClaimData) and reports Table III-style
//! [`DatasetSummary`] rows.
//!
//! # Example
//!
//! ```
//! use socsense_twitter::{ScenarioConfig, TwitterDataset};
//!
//! let cfg = ScenarioConfig::ukraine().scaled(0.02); // 2% size for speed
//! let ds = TwitterDataset::simulate(&cfg, 7)?;
//! let summary = ds.summary();
//! assert!(summary.total_claims >= summary.original_claims);
//! let data = ds.claim_data();
//! assert_eq!(data.source_count() as u32, cfg.n_sources);
//! # Ok::<(), socsense_twitter::TwitterError>(())
//! ```

// detlint: contract = deterministic
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dataset;
mod sim;
mod text;

pub use config::{ScenarioConfig, TwitterError};
pub use dataset::{DatasetSummary, Tweet, TwitterDataset};
pub use text::TextSynthesizer;

use serde::{Deserialize, Serialize};

/// Ground-truth label of an assertion, mirroring the paper's grading
/// rubric ("True", "False", "Opinion").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TruthValue {
    /// A verifiable assertion that is true in the simulated world.
    True,
    /// A verifiable assertion that is false (a rumor).
    False,
    /// A subjective statement; not an act of sensing. Counted in the
    /// denominator of the paper's accuracy metric but never "true".
    Opinion,
}

impl TruthValue {
    /// Whether the label counts as correct in the paper's metric
    /// `#True / (#True + #False + #Opinion)`.
    pub fn is_true(self) -> bool {
        matches!(self, TruthValue::True)
    }
}
