//! Noisy tweet-text synthesis.
//!
//! Each assertion gets a canonical token template drawn from a scenario
//! word bank; individual tweets render the template with word drops and
//! local swaps, and retweets get the conventional `RT` prefix. The noise
//! level is chosen so that tweets of the same assertion stay much more
//! similar (Jaccard over tokens) than tweets of different assertions —
//! the regime Apollo's clustering stage is built for.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Deterministic per-assertion template generator + per-tweet renderer.
#[derive(Debug, Clone)]
pub struct TextSynthesizer {
    scenario_tag: String,
    seed: u64,
}

const SUBJECTS: &[&str] = &[
    "police",
    "witnesses",
    "officials",
    "reporters",
    "residents",
    "sources",
    "crowd",
    "authorities",
    "medics",
    "troops",
];
const VERBS: &[&str] = &[
    "confirm",
    "report",
    "deny",
    "witness",
    "describe",
    "announce",
    "claim",
    "observe",
    "photograph",
    "record",
];
const OBJECTS: &[&str] = &[
    "explosion",
    "evacuation",
    "gunfire",
    "roadblock",
    "outage",
    "protest",
    "rescue",
    "closure",
    "crash",
    "standoff",
];
const PLACES: &[&str] = &[
    "downtown", "station", "bridge", "airport", "hospital", "embassy", "stadium", "market",
    "campus", "harbor",
];
const EXTRAS: &[&str] = &[
    "breaking",
    "developing",
    "unconfirmed",
    "live",
    "update",
    "alert",
    "footage",
    "thread",
    "just",
    "now",
];

impl TextSynthesizer {
    /// Creates a synthesizer for one scenario; `seed` fixes all templates.
    pub fn new(scenario: &str, seed: u64) -> Self {
        let tag = format!(
            "#{}",
            scenario
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase()
        );
        Self {
            scenario_tag: tag,
            seed,
        }
    }

    /// The canonical token sequence for `assertion` (stable across calls).
    pub fn template(&self, assertion: u32) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (assertion as u64).wrapping_mul(0x9e37));
        let pick = |bank: &[&str], rng: &mut StdRng| bank[rng.gen_range(0..bank.len())].to_owned();
        let mut tokens = vec![
            pick(EXTRAS, &mut rng),
            pick(SUBJECTS, &mut rng),
            pick(VERBS, &mut rng),
            pick(OBJECTS, &mut rng),
            "near".to_owned(),
            pick(PLACES, &mut rng),
            format!("a{assertion:05}"), // unique anchor token per assertion
            self.scenario_tag.clone(),
        ];
        // A second place/extra lengthens some templates.
        if rng.gen_bool(0.5) {
            tokens.insert(1, pick(EXTRAS, &mut rng));
        }
        tokens
    }

    /// Renders one tweet of `assertion` with word-level noise; retweets
    /// get an `RT` prefix.
    pub fn render<R: Rng + ?Sized>(&self, assertion: u32, retweet: bool, rng: &mut R) -> String {
        let mut tokens = self.template(assertion);
        // Drop up to one non-anchor word.
        if tokens.len() > 4 && rng.gen_bool(0.3) {
            let i = rng.gen_range(0..tokens.len() - 2); // keep anchor + tag
            tokens.remove(i);
        }
        // Swap an adjacent pair occasionally.
        if tokens.len() > 3 && rng.gen_bool(0.2) {
            let i = rng.gen_range(0..tokens.len() - 3);
            tokens.swap(i, i + 1);
        }
        let body = tokens.join(" ");
        if retweet {
            format!("RT {body}")
        } else {
            body
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jaccard(a: &str, b: &str) -> f64 {
        let sa: std::collections::BTreeSet<&str> = a.split_whitespace().collect();
        let sb: std::collections::BTreeSet<&str> = b.split_whitespace().collect();
        let inter = sa.intersection(&sb).count() as f64;
        let union = sa.union(&sb).count() as f64;
        inter / union
    }

    #[test]
    fn templates_are_stable_and_distinct() {
        let t = TextSynthesizer::new("Ukraine", 9);
        assert_eq!(t.template(5), t.template(5));
        assert_ne!(t.template(5), t.template(6));
        // The anchor token always survives.
        assert!(t.template(5).iter().any(|w| w == "a00005"));
    }

    #[test]
    fn same_assertion_tweets_are_similar_different_are_not() {
        let t = TextSynthesizer::new("Kirkuk", 4);
        let mut rng = StdRng::seed_from_u64(0);
        let a1 = t.render(1, false, &mut rng);
        let a2 = t.render(1, true, &mut rng);
        let b = t.render(2, false, &mut rng);
        assert!(
            jaccard(&a1, &a2) > 0.6,
            "same-assertion {}",
            jaccard(&a1, &a2)
        );
        assert!(
            jaccard(&a1, &b) < 0.5,
            "cross-assertion {}",
            jaccard(&a1, &b)
        );
    }

    #[test]
    fn retweets_carry_rt_prefix() {
        let t = TextSynthesizer::new("Paris Attack", 1);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(t.render(0, true, &mut rng).starts_with("RT "));
        assert!(!t.render(0, false, &mut rng).starts_with("RT "));
    }

    #[test]
    fn scenario_tag_is_sanitized() {
        let t = TextSynthesizer::new("LA Marathon", 0);
        assert!(t.template(0).iter().any(|w| w == "#lamarathon"));
    }
}
