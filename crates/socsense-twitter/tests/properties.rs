//! Property-based tests for the cascade simulator's invariants.

use proptest::prelude::*;
use socsense_twitter::{ScenarioConfig, TwitterDataset};
use std::collections::{HashMap, HashSet};

fn arbitrary_scenario() -> impl Strategy<Value = ScenarioConfig> {
    (
        10u32..120,   // sources
        5u32..60,     // assertions
        0.2f64..0.9,  // true_frac
        0.0f64..0.4,  // opinion_frac
        1.0f64..3.0,  // witness_mean
        0.0f64..0.5,  // retweet_prob
        0.5f64..2.5,  // rumor_boost
        0.05f64..0.8, // verify_prob
        1u32..5,      // max_cascade_depth
    )
        .prop_map(|(n, m, tf, of, wm, rp, rb, vp, depth)| {
            let mut c = ScenarioConfig::ukraine();
            c.name = "prop".into();
            c.n_sources = n;
            c.n_assertions = m;
            c.true_frac = tf;
            c.opinion_frac = of;
            c.witness_mean = wm;
            c.retweet_prob = rp;
            c.rumor_boost = rb;
            c.verify_prob = vp;
            c.max_cascade_depth = depth;
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The simulated tweet log is internally consistent for any valid
    /// scenario: unique (source, assertion) pairs, valid retweet
    /// references (same assertion, earlier time, follow edge), in-range
    /// ids, and summary counts that add up.
    #[test]
    fn simulation_invariants_hold(cfg in arbitrary_scenario(), seed in 0u64..200) {
        let ds = TwitterDataset::simulate(&cfg, seed).unwrap();
        let mut ids = HashSet::new();
        let mut pairs = HashSet::new();
        let by_id: HashMap<u64, _> = ds.tweets.iter().map(|t| (t.id, t)).collect();
        for t in &ds.tweets {
            prop_assert!(ids.insert(t.id), "duplicate tweet id");
            prop_assert!(pairs.insert((t.source, t.assertion)), "duplicate claim");
            prop_assert!(t.source < cfg.n_sources);
            prop_assert!(t.assertion < cfg.n_assertions);
            prop_assert!(!t.text.is_empty());
            if let Some(orig) = t.retweet_of {
                let o = by_id.get(&orig).expect("retweet target exists");
                prop_assert_eq!(o.assertion, t.assertion);
                prop_assert!(o.time < t.time);
                prop_assert!(ds.graph.follows(t.source, o.source));
            }
        }
        // Summary consistency.
        let s = ds.summary();
        prop_assert_eq!(s.total_claims, pairs.len());
        prop_assert!(s.original_claims <= s.total_claims);
        prop_assert!(s.sources <= cfg.n_sources as usize);
        prop_assert!(s.assertions <= cfg.n_assertions as usize);
        // Claim matrix mirrors the tweet log.
        let data = ds.claim_data();
        prop_assert_eq!(data.claim_count(), pairs.len());
    }

    /// Zero retweet probability means no cascades: every tweet is an
    /// original. Dependent claims can still occur — a witness may
    /// independently repeat what a followee already said, and the
    /// who-spoke-first rule rightly marks that dependent — but each such
    /// cell must trace back to an earlier followee original.
    #[test]
    fn no_retweets_without_retweet_probability(seed in 0u64..100) {
        let mut cfg = ScenarioConfig::kirkuk().scaled(0.02);
        cfg.retweet_prob = 0.0;
        let ds = TwitterDataset::simulate(&cfg, seed).unwrap();
        prop_assert!(ds.tweets.iter().all(|t| t.retweet_of.is_none()));
        prop_assert_eq!(ds.summary().original_ratio(), 1.0);
        let data = ds.claim_data();
        for (i, j) in data.sc().entries() {
            if data.dependent(i, j) {
                let own = ds
                    .tweets
                    .iter()
                    .find(|t| t.source == i && t.assertion == j)
                    .expect("claim has a tweet");
                let earlier_followee = ds.tweets.iter().any(|t| {
                    t.assertion == j && t.time < own.time && ds.graph.follows(i, t.source)
                });
                prop_assert!(earlier_followee, "dependent claim without followee origin");
            }
        }
    }
}

/// Regression for the `summary()` hash-map walk (detlint D1): the
/// earliest-tweet table is now a `BTreeMap`, so repeated calls — and
/// calls against a log whose tweets arrive in a different order —
/// produce identical Table III rows. Time ties between tweets of the
/// same claim resolve by log position, which both orders exercise.
#[test]
fn summary_is_identical_across_calls_and_log_orderings() {
    let ds = TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(0.02), 11).unwrap();
    let s = ds.summary();
    assert_eq!(s, ds.summary(), "repeated calls must agree exactly");

    let mut rev = ds.clone();
    rev.tweets.reverse();
    let sr = rev.summary();
    assert_eq!(s.assertions, sr.assertions);
    assert_eq!(s.sources, sr.sources);
    assert_eq!(s.total_claims, sr.total_claims);
    assert_eq!(s.original_claims, sr.original_claims);
}
