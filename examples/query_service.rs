//! Many clients, one warm estimator: the socsense query service.
//!
//! Replays a simulated breaking-news campaign through a [`QueryService`]
//! while four client threads hammer it with posterior, ranking, and
//! bound queries. The service owns a single `StreamingEstimator` behind
//! a channel, so every client shares the same warm fit and the answers
//! are byte-identical to a serial replay no matter how the queries
//! interleave.
//!
//! ```text
//! cargo run --release --example query_service
//! ```
//!
//! [`QueryService`]: socsense::serve::QueryService

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use socsense::graph::TimedClaim;
use socsense::serve::{QueryService, ServeConfig};
use socsense::twitter::{ScenarioConfig, TwitterDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = ScenarioConfig::kirkuk().scaled(0.08);
    let dataset = TwitterDataset::simulate(&scenario, 99)?;
    let claims: Vec<TimedClaim> = dataset.timed_claims();
    println!(
        "serving {} claims from {} to 4 concurrent clients\n",
        claims.len(),
        dataset.name
    );

    let service = QueryService::spawn(
        dataset.source_count(),
        dataset.assertion_count(),
        dataset.graph.clone(),
        ServeConfig::default(),
    )?;

    // Four clients query continuously while the replay is still feeding
    // batches in — the service answers from the latest warm fit.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let handle = service.handle();
            let stop = Arc::clone(&stop);
            let m = dataset.assertion_count();
            std::thread::spawn(move || {
                let mut served = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let r = match c % 3 {
                        0 => handle.posterior(served as u32 % m).map(|_| ()),
                        1 => handle.top_sources(5).map(|_| ()),
                        _ => handle.stats().map(|_| ()),
                    };
                    if r.is_ok() {
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    let handle = service.handle();
    for batch in claims.chunks(claims.len().div_ceil(6)) {
        let ack = handle.ingest(batch.to_vec())?;
        println!(
            "ingested batch -> {} claims total, refitted: {}",
            ack.total_claims, ack.refitted
        );
    }

    let ranks = handle.top_sources(5)?;
    println!("\ntop sources by estimated precision:");
    for (i, r) in ranks.iter().enumerate() {
        println!(
            "{:>3}. source {:<4} precision={:.4}",
            i + 1,
            r.source,
            r.precision
        );
    }

    stop.store(true, Ordering::Relaxed);
    let answered: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    let stats = service.shutdown()?;
    println!(
        "\nclients got {answered} answers; service made {} chain refits and {} probe refits \
         ({} served from the probe cache)",
        stats.chain_refits, stats.probe_refits, stats.probe_cache_hits
    );
    Ok(())
}
