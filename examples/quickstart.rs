//! Quickstart: the paper's Fig. 1 scenario, end to end.
//!
//! Three commuters report traffic. John follows Sally, so his repeat of
//! her claim is *dependent*; his other claim is independent. We build the
//! source-claim and dependency matrices from the timestamped claim log,
//! fit the dependency-aware EM-Ext estimator, and print what it believes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use socsense::core::{classify, ClaimData, EmConfig, EmExt};
use socsense::graph::{FollowerGraph, TimedClaim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const NAMES: [&str; 3] = ["John", "Sally", "Heather"];
    const ASSERTIONS: [&str; 2] = [
        "Main Street, Urbana, IL is congested",
        "University Ave., Urbana, IL is congested",
    ];

    // Who follows whom: John (0) follows Sally (1).
    let mut graph = FollowerGraph::new(3);
    graph.add_follow(0, 1);

    // The morning's tweets, in time order.
    let claims = vec![
        TimedClaim::new(1, 0, 1), // Sally: Main St congested   @ t1
        TimedClaim::new(2, 1, 1), // Heather: University Ave    @ t1
        TimedClaim::new(0, 0, 2), // John repeats Sally         @ t2  (dependent)
        TimedClaim::new(0, 1, 3), // John: University Ave       @ t3  (independent)
    ];

    let data = ClaimData::from_claims(3, 2, &claims, &graph);
    println!(
        "{} sources, {} assertions, {} claims ({} dependent)",
        data.source_count(),
        data.assertion_count(),
        data.claim_count(),
        data.dependent_claim_count()
    );
    for (i, name) in NAMES.iter().enumerate() {
        let row = data.sc().row(i as u32);
        println!("  {name} asserted {row:?}");
    }

    // Fit EM-Ext: jointly estimates every source's reliability profile
    // (a, b, f, g) and each assertion's truth posterior.
    let fit = EmExt::new(EmConfig::default()).fit(&data)?;
    println!(
        "\nEM-Ext converged in {} iterations (log-likelihood {:.4})",
        fit.iterations, fit.log_likelihood
    );
    let labels = classify(&fit.posterior);
    for (j, text) in ASSERTIONS.iter().enumerate() {
        println!(
            "  P(true) = {:.3} [{}]  \"{}\"",
            fit.posterior[j],
            if labels[j] { "TRUE" } else { "FALSE" },
            text
        );
    }
    for (i, name) in NAMES.iter().enumerate() {
        let s = fit.theta.source(i);
        println!(
            "  {name}: a = {:.3}, b = {:.3}, f = {:.3}, g = {:.3}",
            s.a, s.b, s.f, s.g
        );
    }
    Ok(())
}
