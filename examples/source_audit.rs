//! Auditing *sources* rather than assertions: reliability estimates with
//! confidence intervals.
//!
//! Fits EM-Ext on a simulated campaign and prints the most and least
//! reliable accounts by estimated independent-claim odds `a/b`, each with
//! a 95 % Wald interval on `a` — making visible how little a
//! single-claim account's reliability is actually known.
//!
//! ```text
//! cargo run --release --example source_audit
//! ```

use socsense::core::{confidence_report, EmConfig, EmExt};
use socsense::matrix::logprob::prob_to_odds;
use socsense::twitter::{ScenarioConfig, TwitterDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = TwitterDataset::simulate(&ScenarioConfig::superbug().scaled(0.05), 11)?;
    let data = dataset.claim_data();
    let fit = EmExt::new(EmConfig::default()).fit(&data)?;
    let report = confidence_report(&data, &fit.theta, &fit.posterior, 0.95)?;

    // Rank sources that made at least 3 claims by estimated a/b odds.
    let mut audited: Vec<(u32, f64)> = (0..data.source_count() as u32)
        .filter(|&i| data.sc().row_nnz(i) >= 3)
        .map(|i| {
            let s = fit.theta.source(i as usize);
            let odds = prob_to_odds(s.a) / prob_to_odds(s.b).max(1e-9);
            (i, odds)
        })
        .collect();
    audited.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));

    println!(
        "{} multi-claim accounts audited (of {} total)\n",
        audited.len(),
        data.source_count()
    );
    let row = |i: u32| {
        let s = fit.theta.source(i as usize);
        let c = &report.sources[i as usize];
        println!(
            "  source {:>5}: a = {:.3} [{:.3}, {:.3}] (n_eff {:>6.1})  b = {:.3}  claims = {}",
            i,
            s.a,
            c.a.lo,
            c.a.hi,
            c.a.effective_n,
            s.b,
            data.sc().row_nnz(i)
        );
    };
    println!("most reliable (highest estimated a/b odds):");
    for &(i, _) in audited.iter().take(5) {
        row(i);
    }
    println!("\nleast reliable:");
    for &(i, _) in audited.iter().rev().take(5) {
        row(i);
    }

    // The cautionary tale: a single-claim account.
    if let Some(one) = (0..data.source_count() as u32).find(|&i| data.sc().row_nnz(i) == 1) {
        let c = &report.sources[one as usize];
        println!(
            "\nfor contrast, single-claim source {one}: a ∈ [{:.3}, {:.3}] — \
             one observation pins (almost) nothing down",
            c.a.lo, c.a.hi
        );
    }
    Ok(())
}
