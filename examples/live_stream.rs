//! Live fact-finding over a tweet stream with the recursive estimator.
//!
//! Replays a simulated breaking-news campaign in time order, feeding
//! tweets to [`StreamingEstimator`] in batches the way a deployed Apollo
//! would poll the firehose. After every batch the estimator warm-starts
//! from its previous parameters; the example prints how accuracy firms up
//! and how few EM iterations each incremental refit needs.
//!
//! ```text
//! cargo run --release --example live_stream
//! ```
//!
//! [`StreamingEstimator`]: socsense::core::StreamingEstimator

use socsense::core::{classify, EmConfig, StreamingEstimator};
use socsense::graph::TimedClaim;
use socsense::twitter::{ScenarioConfig, TruthValue, TwitterDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = ScenarioConfig::kirkuk().scaled(0.08);
    let dataset = TwitterDataset::simulate(&scenario, 99)?;
    println!(
        "replaying {} tweets from {} in 6 batches\n",
        dataset.tweets.len(),
        dataset.name
    );

    let truth: Vec<Option<bool>> = (0..dataset.assertion_count())
        .map(|j| match dataset.truth_value(j) {
            TruthValue::True => Some(true),
            TruthValue::False => Some(false),
            TruthValue::Opinion => None, // ungradeable
        })
        .collect();

    let mut estimator = StreamingEstimator::new(
        dataset.source_count(),
        dataset.assertion_count(),
        dataset.graph.clone(),
        EmConfig::default(),
    )?;

    let claims: Vec<TimedClaim> = dataset.timed_claims();
    let batch_size = claims.len().div_ceil(6);
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>8}",
        "batch", "claims", "accuracy", "iterations", "warm"
    );
    for (b, batch) in claims.chunks(batch_size).enumerate() {
        estimator.ingest(batch)?;
        let (fit, stats) = estimator.estimate_with_stats()?;
        let labels = classify(&fit.posterior);
        let (mut hits, mut graded) = (0usize, 0usize);
        for (j, label) in labels.iter().enumerate() {
            if let Some(t) = truth[j] {
                graded += 1;
                if *label == t {
                    hits += 1;
                }
            }
        }
        println!(
            "{:>6} {:>8} {:>9.1}% {:>12} {:>8}",
            b + 1,
            stats.total_claims,
            100.0 * hits as f64 / graded.max(1) as f64,
            stats.iterations,
            if stats.warm { "yes" } else { "cold" }
        );
    }
    println!("\nwarm refits converge in a fraction of the cold start's iterations");
    Ok(())
}
