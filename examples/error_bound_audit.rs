//! Auditing a sensing deployment with the fundamental error bound.
//!
//! Given a source population's behavioural profile, Sec. III's Bayes-risk
//! bound answers "how good could *any* fact-finder possibly be here?" —
//! useful before investing in a better estimator. This example sweeps
//! source quality, computes the exact bound and its Gibbs approximation,
//! shows the FP/FN split, and demonstrates where the exact enumeration
//! stops being viable.
//!
//! ```text
//! cargo run --release --example error_bound_audit
//! ```

// Demo timing only: examples are outside the determinism contract
// (detlint scans src/ and tests/), and the wall-clock readings here
// never feed an estimate.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use socsense::core::{exact_bound, gibbs_bound, GibbsConfig};
use socsense::matrix::logprob::odds_to_prob;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A population of 12 sources; claim odds vary from barely informative
    // to strongly informative.
    println!("12 sources, z = 0.5: bound vs per-source claim odds");
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10}",
        "odds", "exact", "gibbs", "FP part", "FN part"
    );
    for k in 1..=8 {
        let odds = 1.0 + 0.25 * k as f64;
        let p_claim_true = odds_to_prob(odds) * 0.4; // scaled participation
        let p_claim_false = odds_to_prob(1.0 / odds) * 0.4;
        let probs = vec![(p_claim_true, p_claim_false); 12];
        let exact = exact_bound(&probs, 0.5)?;
        let approx = gibbs_bound(&probs, 0.5, &GibbsConfig::default())?;
        println!(
            "{odds:>10.2} {:>12.4} {:>12.4} {:>10.4} {:>10.4}",
            exact.error, approx.result.error, exact.false_positive, exact.false_negative
        );
    }

    // Where exact enumeration dies: wall time vs n.
    println!("\nexact vs Gibbs wall time:");
    for n in [10usize, 15, 20, 24] {
        let probs: Vec<(f64, f64)> = (0..n)
            .map(|i| (0.45 + 0.01 * (i % 9) as f64, 0.42 - 0.01 * (i % 7) as f64))
            .collect();
        let t0 = Instant::now();
        let exact = exact_bound(&probs, 0.5)?;
        let t_exact = t0.elapsed();
        let t0 = Instant::now();
        let approx = gibbs_bound(&probs, 0.5, &GibbsConfig::default())?;
        let t_gibbs = t0.elapsed();
        println!(
            "  n = {n:>2}: exact {:.4} in {:>9.3?} | gibbs {:.4} in {:>9.3?} ({} samples)",
            exact.error, t_exact, approx.result.error, t_gibbs, approx.samples
        );
    }
    println!("\n(beyond n = 30 `exact_bound` refuses; use `gibbs_bound`)");
    Ok(())
}
