//! The rumor scenario the paper's introduction motivates: when sources
//! repeat what they heard, independence-assuming fact-finders believe the
//! echo chamber.
//!
//! We generate a synthetic world with a single hub followed by everyone
//! (τ = 1 — the most dependency-heavy forest) and compare EM-Ext against
//! the independence-assuming EM and the dependent-claim-deleting
//! EM-Social, plus the fundamental error bound ("no estimator can do
//! better than this").
//!
//! ```text
//! cargo run --release --example rumor_cascade
//! ```

use socsense::baselines::{EmExtFinder, EmIndependent, EmSocial, FactFinder};
use socsense::core::{bound_for_data, BoundMethod};
use socsense::eval::Confusion;
use socsense::synth::{empirical_theta, GeneratorConfig, IntInterval, SyntheticDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = GeneratorConfig::estimator_defaults();
    config.tau = IntInterval::fixed(1); // one hub, 49 followers

    println!(
        "single-hub world: n = {}, m = {}, tau = 1",
        config.n, config.m
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "algorithm", "accuracy", "fp-rate", "fn-rate"
    );

    let reps = 25;
    let finders: [(&str, Box<dyn FactFinder>); 3] = [
        ("EM-Ext", Box::new(EmExtFinder::default())),
        ("EM", Box::new(EmIndependent::default())),
        ("EM-Social", Box::new(EmSocial::default())),
    ];
    for (name, finder) in &finders {
        let (mut acc, mut fp, mut fnr) = (0.0, 0.0, 0.0);
        for seed in 0..reps {
            let ds = SyntheticDataset::generate(&config, seed)?;
            let labels = finder.classify(&ds.data)?;
            let c = Confusion::from_labels(&labels, &ds.truth);
            acc += c.accuracy();
            fp += c.false_positive_rate();
            fnr += c.false_negative_rate();
        }
        let k = reps as f64;
        println!(
            "{name:>10} {:>10.3} {:>10.3} {:>10.3}",
            acc / k,
            fp / k,
            fnr / k
        );
    }

    // The fundamental bound: average Bayes risk under the measured θ.
    let (mut opt, mut reps_done) = (0.0, 0);
    for seed in 0..5 {
        let ds = SyntheticDataset::generate(&config, seed)?;
        let theta = empirical_theta(&ds);
        let bound = bound_for_data(&ds.data, &theta, &BoundMethod::default())?;
        opt += bound.optimal_accuracy();
        reps_done += 1;
    }
    println!(
        "{:>10} {:>10.3}   (1 - Bayes risk; no estimator beats this on average)",
        "Optimal",
        opt / reps_done as f64
    );
    Ok(())
}
