//! A breaking-news campaign through the full Apollo pipeline.
//!
//! Simulates a Paris-attack-style Twitter scenario (heavy original
//! reporting, viral rumors, fact-checking minority), clusters the raw
//! tweet *text* back into assertions, and ranks them with EM-Ext —
//! exactly the deployment the paper built Apollo for. Prints the ranked
//! feed and how often each algorithm's elite picks are actually true.
//!
//! ```text
//! cargo run --release --example breaking_news
//! ```

use socsense::apollo::{render_report, Apollo, ApolloConfig};
use socsense::baselines::{all_finders, EmExtFinder};
use socsense::twitter::{ScenarioConfig, TwitterDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 10% of the real campaign's size keeps this example quick.
    let scenario = ScenarioConfig::paris_attack().scaled(0.1);
    let dataset = TwitterDataset::simulate(&scenario, 2026)?;
    let summary = dataset.summary();
    println!(
        "{}: {} sources tweeted {} claims ({} original) about {} assertions\n",
        summary.name,
        summary.sources,
        summary.total_claims,
        summary.original_claims,
        summary.assertions
    );

    // Full pipeline with *text* clustering: tweets are grouped by
    // token-shingle similarity, not by their hidden assertion ids.
    let apollo = Apollo::new(ApolloConfig {
        cluster_text: true,
        top_k: 15,
        ..ApolloConfig::default()
    });
    let out = apollo.run(&dataset, &EmExtFinder::default())?;
    print!("{}", render_report(&out, 15));

    // The Fig. 11 comparison on this one campaign: top-20 accuracy of all
    // seven algorithms (assertion ids known, isolating the estimators).
    println!("\ntop-20 accuracy per algorithm:");
    let compare = Apollo::new(ApolloConfig {
        top_k: 20,
        ..ApolloConfig::default()
    });
    for finder in all_finders() {
        let acc = compare.run(&dataset, finder.as_ref())?.top_k_accuracy(20);
        println!("  {:>13}: {:.2}", finder.name(), acc);
    }
    Ok(())
}
