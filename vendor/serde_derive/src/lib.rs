//! Offline stand-in for `serde_derive`, written against `proc_macro`
//! alone (no `syn`/`quote`, which cannot be fetched in this build
//! environment). It supports exactly the shapes this workspace derives
//! on: named-field structs and enums whose variants are unit, newtype,
//! tuple, or struct-like — all without generics — plus the
//! `#[serde(default)]` field attribute. Anything else is a compile-time
//! panic so unsupported uses fail loudly instead of misbehaving.
//!
//! Wire format matches real `serde_json` defaults: structs are objects,
//! unit variants are strings, data-carrying variants are externally
//! tagged single-key objects, tuple payloads of arity > 1 are arrays.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field.
struct Field {
    name: String,
    /// `#[serde(default)]`: fall back to `Default::default()` when the
    /// key is absent.
    default: bool,
}

enum VariantKind {
    Unit,
    /// Unnamed payload with the given arity.
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (the stand-in's `serialize_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let input = parse_input(item);
    let code = match &input {
        Input::Struct { name, fields } => gen_struct_serialize(name, fields),
        Input::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the stand-in's `deserialize_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let input = parse_input(item);
    let code = match &input {
        Input::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Input::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_input(item: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let mut idx = 0;

    // Outer attributes (doc comments arrive as `#[doc = ...]`).
    while matches!(&tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        idx += 2; // '#' + the bracketed group
    }
    // Visibility.
    if matches!(&tokens.get(idx), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        idx += 1;
        if matches!(&tokens.get(idx), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            idx += 1;
        }
    }

    let keyword = match &tokens.get(idx) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stand-in derive: expected struct/enum, got {other:?}"),
    };
    idx += 1;
    let name = match &tokens.get(idx) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stand-in derive: expected type name, got {other:?}"),
    };
    idx += 1;

    if matches!(&tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic type `{name}` is not supported");
    }

    let body = match &tokens.get(idx) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        _ => panic!(
            "serde stand-in derive: `{name}` must have a braced body \
             (tuple/unit structs are not supported)"
        ),
    };

    match keyword.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_fields(&body),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde stand-in derive: unsupported item kind `{other}`"),
    }
}

/// Splits `tokens` at commas that sit outside every group and outside
/// `<...>` type arguments (angle brackets are bare `Punct`s, so a comma
/// in `BTreeMap<String, Value>` needs the depth guard).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Consumes leading attributes from `chunk`, returning how many tokens
/// they span and whether `#[serde(default)]` was among them. Any other
/// `#[serde(...)]` content is rejected.
fn consume_attrs(chunk: &[TokenTree]) -> (usize, bool) {
    let mut idx = 0;
    let mut default = false;
    while matches!(&chunk.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let group = match &chunk.get(idx + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde stand-in derive: malformed attribute, got {other:?}"),
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if matches!(&inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
            let args = match &inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    g.stream().to_string()
                }
                _ => String::new(),
            };
            if args.trim() == "default" {
                default = true;
            } else {
                panic!(
                    "serde stand-in derive: unsupported attribute #[serde({})] \
                     (only #[serde(default)] is implemented)",
                    args.trim()
                );
            }
        }
        idx += 2;
    }
    (idx, default)
}

fn parse_fields(body: &[TokenTree]) -> Vec<Field> {
    split_top_level_commas(body)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let (mut idx, default) = consume_attrs(chunk);
            if matches!(&chunk.get(idx), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
                idx += 1;
                if matches!(&chunk.get(idx), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    idx += 1;
                }
            }
            let name = match &chunk.get(idx) {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("serde stand-in derive: expected field name, got {other:?}"),
            };
            match &chunk.get(idx + 1) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                other => panic!(
                    "serde stand-in derive: expected `:` after field `{name}`, got {other:?}"
                ),
            }
            Field { name, default }
        })
        .collect()
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    split_top_level_commas(body)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let (idx, _) = consume_attrs(chunk);
            let name = match &chunk.get(idx) {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("serde stand-in derive: expected variant name, got {other:?}"),
            };
            let kind = match &chunk.get(idx + 1) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    let arity = split_top_level_commas(&inner)
                        .iter()
                        .filter(|c| !c.is_empty())
                        .count();
                    VariantKind::Tuple(arity)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantKind::Struct(parse_fields(&inner))
                }
                other => panic!(
                    "serde stand-in derive: unsupported tokens after variant `{name}`: {other:?}"
                ),
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut inserts = String::new();
    for f in fields {
        let fname = &f.name;
        inserts.push_str(&format!(
            "map.insert(\"{fname}\".to_string(), \
             ::serde::Serialize::serialize_value(&self.{fname}));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n\
         let mut map = ::serde::Map::new();\n\
         {inserts}\
         ::serde::Value::Object(map)\n\
         }}\n}}\n"
    )
}

fn field_from_obj(f: &Field, ty_name: &str) -> String {
    let fname = &f.name;
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!("return Err(::serde::DeError::missing_field(\"{fname}\", \"{ty_name}\"))")
    };
    format!(
        "{fname}: match obj.get(\"{fname}\") {{\n\
         Some(v) => ::serde::Deserialize::deserialize_value(v)?,\n\
         None => {missing},\n\
         }},\n"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut field_exprs = String::new();
    for f in fields {
        field_exprs.push_str(&field_from_obj(f, name));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         let obj = value.as_object().ok_or_else(|| \
         ::serde::DeError::expected(\"object\", value, \"{name}\"))?;\n\
         Ok({name} {{\n{field_exprs}}})\n\
         }}\n}}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
            )),
            VariantKind::Tuple(arity) => {
                let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                let payload = if *arity == 1 {
                    "::serde::Serialize::serialize_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vname}({binds}) => {{\n\
                     let mut map = ::serde::Map::new();\n\
                     map.insert(\"{vname}\".to_string(), {payload});\n\
                     ::serde::Value::Object(map)\n\
                     }}\n",
                    binds = binders.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut inserts = String::new();
                for f in fields {
                    let fname = &f.name;
                    inserts.push_str(&format!(
                        "inner.insert(\"{fname}\".to_string(), \
                         ::serde::Serialize::serialize_value({fname}));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => {{\n\
                     let mut inner = ::serde::Map::new();\n\
                     {inserts}\
                     let mut map = ::serde::Map::new();\n\
                     map.insert(\"{vname}\".to_string(), ::serde::Value::Object(inner));\n\
                     ::serde::Value::Object(map)\n\
                     }}\n",
                    binds = binders.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"))
            }
            VariantKind::Tuple(arity) => {
                if *arity == 1 {
                    tagged_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize_value(inner)?)),\n"
                    ));
                } else {
                    let items: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                        .collect();
                    tagged_arms.push_str(&format!(
                        "\"{vname}\" => match inner {{\n\
                         ::serde::Value::Array(items) if items.len() == {arity} => \
                         Ok({name}::{vname}({items})),\n\
                         other => Err(::serde::DeError::expected(\
                         \"array of {arity}\", other, \"{name}::{vname}\")),\n\
                         }},\n",
                        items = items.join(", ")
                    ));
                }
            }
            VariantKind::Struct(fields) => {
                let qualified = format!("{name}::{vname}");
                let mut field_exprs = String::new();
                for f in fields {
                    field_exprs.push_str(&field_from_obj(f, &qualified));
                }
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                     let obj = inner.as_object().ok_or_else(|| \
                     ::serde::DeError::expected(\"object\", inner, \"{qualified}\"))?;\n\
                     Ok({name}::{vname} {{\n{field_exprs}}})\n\
                     }}\n"
                ));
            }
        }
    }
    // Without tagged variants the payload binder would be dead code;
    // underscore it so `-D warnings` builds stay clean.
    let inner_binder = if tagged_arms.is_empty() {
        "_inner"
    } else {
        "inner"
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         match value {{\n\
         ::serde::Value::String(tag) => match tag.as_str() {{\n\
         {unit_arms}\
         other => Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
         }},\n\
         ::serde::Value::Object(map) if map.len() == 1 => {{\n\
         let (tag, {inner_binder}) = map.iter().next().expect(\"single-key object\");\n\
         match tag.as_str() {{\n\
         {tagged_arms}\
         other => Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
         }}\n\
         }}\n\
         other => Err(::serde::DeError::expected(\
         \"string or single-key object\", other, \"{name}\")),\n\
         }}\n\
         }}\n}}\n"
    )
}
