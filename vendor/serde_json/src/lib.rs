//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`Value`], and the [`json!`] macro.
//!
//! Built on the stand-in `serde` crate's [`Value`] data model. Output
//! conventions match real `serde_json` where the workspace depends on
//! them: object keys are sorted, floats print in shortest
//! round-trippable form (`float_roundtrip` semantics — Rust's `{:?}`
//! formatting guarantees parse-back equality), non-finite floats
//! serialise as `null`, and pretty output uses two-space indentation.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Serialize};
pub use serde::{Map, Number, Value};

/// Serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Converts any serialisable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` keeps call-site
/// compatibility with real `serde_json`.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Serialises to compact JSON text.
///
/// # Errors
///
/// Never fails in this stand-in.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialises to two-space-indented JSON text.
///
/// # Errors
///
/// Never fails in this stand-in.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserialisable value.
///
/// # Errors
///
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::deserialize_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Builds a [`Value`] literal. Supports `null`, arrays, flat objects
/// with string-literal keys, and any serialisable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $(
            map.insert(
                ($key).to_string(),
                $crate::to_value(&$val).expect("json! value serialises"),
            );
        )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serialises")
    };
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        // `{:?}` prints the shortest decimal that parses back to the
        // same f64 and keeps a `.0`/exponent marker on integral values,
        // matching serde_json's float_roundtrip behaviour.
        Number::Float(v) if v.is_finite() => out.push_str(&format!("{v:?}")),
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one whole UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if integral {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(v) = digits.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(v).map(|v| -v) {
                        return Ok(Value::Number(Number::NegInt(neg)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let cases = [
            Value::Null,
            Value::Bool(true),
            Value::Number(Number::PosInt(u64::MAX)),
            Value::Number(Number::NegInt(-42)),
            Value::Number(Number::Float(0.1 + 0.2)),
            Value::Number(Number::Float(1.0)),
            Value::String("hi \"there\"\n\\ \u{1f600} \u{7}".into()),
            Value::Array(vec![Value::Null, Value::Bool(false)]),
        ];
        for v in cases {
            let text = to_string(&v).unwrap();
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "round-trip failed for {text}");
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &f in &[
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
        ] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn object_keys_are_sorted_and_pretty_indents() {
        let v = json!({ "b": 1u32, "a": [1u32, 2u32] });
        assert_eq!(to_string(&v).unwrap(), r#"{"a":[1,2],"b":1}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1,"), "{pretty}");
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let v: Value = from_str(r#"{"s": "aA😀\n"}"#).unwrap();
        assert_eq!(
            v.as_object().unwrap()["s"].as_str().unwrap(),
            "aA\u{1f600}\n"
        );
        assert!(from_str::<Value>("{\"a\": 1} trailing").is_err());
        assert!(from_str::<Value>("[1, ]").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn json_macro_builds_flat_objects() {
        let ranked = vec![(1u32, 2u32)];
        let v = json!({ "input": "x", "ranked": ranked, "n": 3u64 });
        let obj = v.as_object().unwrap();
        assert_eq!(obj["input"].as_str().unwrap(), "x");
        assert_eq!(obj["n"], Value::Number(Number::PosInt(3)));
        assert!(matches!(obj["ranked"], Value::Array(_)));
    }
}
