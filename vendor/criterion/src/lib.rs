//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment cannot fetch the real crate, so this one keeps
//! the bench-side API (`criterion_group!`/`criterion_main!`,
//! `benchmark_group`, `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `black_box`,
//! `BenchmarkId`) over a plain wall-clock harness: each benchmark warms
//! up, picks an iteration count that fills the measurement window, and
//! prints `min/mean/max` per sample. There are no saved baselines,
//! plots, or statistical tests.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, as real criterion renders it.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Substring filter from the command line (`cargo bench -- foo`).
    filter: Option<String>,
}

impl Criterion {
    /// A driver configured from the process arguments: the first
    /// non-flag argument becomes a substring filter.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            filter: self.filter.clone(),
            sample_size: 20,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }
}

/// A group of benchmarks sharing timing settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    filter: Option<String>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement window split across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(&full, &bencher.samples);
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; reporting happens
    /// per-benchmark).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times the closure: warm-up, then `sample_size` samples of a
    /// batch size chosen to fill the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up || warm_iters == u32::MAX {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters).max(1);
        let per_sample = self.measurement.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (per_sample / per_iter.max(1)).clamp(1, 1 << 24) as u32;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / iters);
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("unit");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u32), &50u32, |b, &n| {
            b.iter(|| (0..u64::from(n)).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(unit_benches, sample_bench);

    #[test]
    fn harness_runs_and_reports() {
        unit_benches();
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("exact", 5).id, "exact/5");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
