//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The container building this repo has no crates.io access, so the real
//! `serde` cannot be fetched. This crate keeps the same *call sites*
//! (`#[derive(Serialize, Deserialize)]`, `use serde::{Serialize,
//! Deserialize}`) but collapses serde's visitor architecture into a
//! single JSON-shaped data model: [`Value`]. Serialisation is "convert to
//! `Value`", deserialisation is "convert from `Value`"; the companion
//! `serde_json` stand-in renders and parses `Value` as JSON text.
//!
//! The JSON representations match real `serde_json` defaults where the
//! workspace depends on them: named structs are objects, unit enum
//! variants are strings, data-carrying variants are externally tagged
//! single-key objects, tuples are arrays, object keys are sorted
//! (BTreeMap), and floats round-trip exactly (shortest representation,
//! `float_roundtrip` semantics).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Object map used by [`Value::Object`]; sorted keys, like default
/// `serde_json`.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything with a fractional part or exponent.
    Float(f64),
}

impl Number {
    /// Numeric value as `f64` (possibly lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

/// The JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with sorted keys.
    Object(Map),
}

impl Value {
    /// Borrow as an object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// One-word description used in error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Free-form error.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// "expected X, found Y while reading T".
    pub fn expected(what: &str, found: &Value, ty: &str) -> Self {
        Self::custom(format!(
            "expected {what}, found {} while deserializing {ty}",
            found.kind()
        ))
    }

    /// A required object key was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Self::custom(format!("missing field `{field}` in {ty}"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        Self::custom(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the JSON data model.
pub trait Serialize {
    /// Self as a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Conversion out of the JSON data model.
pub trait Deserialize: Sized {
    /// Self from a [`Value`].
    ///
    /// # Errors
    ///
    /// [`DeError`] when `value` has the wrong shape.
    fn deserialize_value(value: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other, "bool")),
        }
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let err = || DeError::expected("unsigned integer", value, stringify!($t));
                match value {
                    Value::Number(Number::PosInt(v)) => {
                        <$t>::try_from(*v).map_err(|_| err())
                    }
                    Value::Number(Number::Float(f))
                        if f.fract() == 0.0 && *f >= 0.0 && *f <= <$t>::MAX as f64 =>
                    {
                        Ok(*f as $t)
                    }
                    _ => Err(err()),
                }
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let err = || DeError::expected("integer", value, stringify!($t));
                match value {
                    Value::Number(Number::PosInt(v)) => {
                        i64::try_from(*v).ok().and_then(|v| <$t>::try_from(v).ok()).ok_or_else(err)
                    }
                    Value::Number(Number::NegInt(v)) => <$t>::try_from(*v).map_err(|_| err()),
                    Value::Number(Number::Float(f)) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(err()),
                }
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::expected("number", other, "f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(n) => Ok(n.as_f64() as f32),
            other => Err(DeError::expected("number", other, "f32")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other, "String")),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("single-char string", other, "char")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", other, "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other, "BTreeMap")),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("fixed-length array", other, "tuple")),
                }
            }
        }
    )*};
}

tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        assert_eq!(u64::deserialize_value(&42u64.serialize_value()), Ok(42));
        assert_eq!(i32::deserialize_value(&(-7i32).serialize_value()), Ok(-7));
        assert_eq!(f64::deserialize_value(&1.5f64.serialize_value()), Ok(1.5));
        assert_eq!(bool::deserialize_value(&true.serialize_value()), Ok(true));
        let v: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        assert_eq!(
            Vec::<(u32, u32)>::deserialize_value(&v.serialize_value()),
            Ok(v)
        );
        assert_eq!(Option::<String>::deserialize_value(&Value::Null), Ok(None));
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u32::deserialize_value(&Value::String("x".into())).is_err());
        assert!(u8::deserialize_value(&300u32.serialize_value()).is_err());
        assert!(String::deserialize_value(&Value::Null).is_err());
    }
}
