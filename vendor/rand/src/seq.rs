//! Slice sampling helpers (`rand::seq` subset).

use crate::{Rng, RngCore};

/// Random selection and shuffling on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniformly random element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_all_elements() {
        let v = [1, 2, 3, 4];
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }
}
