//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], the [`Rng`] / [`RngCore`] / [`SeedableRng`]
//! traits, and [`seq::SliceRandom`].
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched; this crate provides the same call-sites a
//! deterministic, high-quality generator (xoshiro256++ seeded via
//! SplitMix64). The numeric *streams* differ from upstream `rand`, which
//! is fine for this workspace: every consumer treats the RNG as an opaque
//! seeded stream and only relies on per-seed reproducibility.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it into a full seed with
    /// SplitMix64 (deterministic across platforms).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly from the generator's full range (the subset
/// of `rand`'s `Standard` distribution this workspace needs).
pub trait Standard01: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard01 for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard01 for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard01 for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard01 for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl Standard01 for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard01 for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard01 for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types with a uniform sampler over an interval. Mirrors upstream
/// `rand`'s trait of the same name; having ONE blanket [`SampleRange`]
/// impl per range kind (below) is what lets integer-literal inference
/// flow through `gen_range(0..5)` the way it does upstream.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics when the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`. Panics when `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_unsigned_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Multiply-shift keeps bias below 2^-64.
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + off
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return Standard01::sample_standard(rng);
                }
                let span = (hi as u128) - (lo as u128) + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + off
            }
        }
    )*};
}

uniform_unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

uniform_signed_impls!(i8, i16, i32, i64, isize);

macro_rules! uniform_float_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let unit: $t = Standard01::sample_standard(rng);
                lo + (hi - lo) * unit
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard01::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

uniform_float_impls!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw of `T` (`f64` in `[0,1)`, full-range integers).
    fn gen<T: Standard01>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw; panics unless `p` is in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        let unit: f64 = Standard01::sample_standard(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 20_000.0 - 0.3).abs() < 0.02);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
