//! The [`Strategy`] trait and the combinators this workspace uses.
//!
//! A strategy here is just a deterministic sampler: `generate(rng)`
//! draws one value. There is no shrinking tree; the runner reports the
//! failing case's seed instead.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

/// One-value-per-draw generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a downstream strategy from every generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

range_strategies!(u32, u64, usize, i32, i64, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// String literals act as regex-style generators. Supported syntax: a
/// sequence of atoms (literal characters or `[a-z…]` classes built from
/// ranges and single characters) each with an optional `{n}`, `{m,n}`,
/// `?`, `+`, or `*` quantifier (`+`/`*` cap at 8 repetitions).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (choices, min, max) in &atoms {
            let count = rng.gen_range(*min..=*max);
            for _ in 0..count {
                out.push(choices[rng.gen_range(0..choices.len())]);
            }
        }
        out
    }
}

/// Parses a pattern into `(choices, min_reps, max_reps)` atoms. Panics
/// on syntax outside the supported subset, so a bad pattern fails the
/// test loudly instead of generating garbage.
fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range `{lo}-{hi}` in pattern `{pattern}`");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern `{pattern}`");
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                assert!(
                    !"(){}|.^$?+*".contains(c),
                    "unsupported regex syntax `{c}` in pattern `{pattern}`"
                );
                i += 1;
                vec![c]
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("repetition lower bound"),
                        hi.parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("repetition count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad repetition in pattern `{pattern}`");
        atoms.push((choices, min, max));
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pattern_generation_honours_class_and_counts() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = "[a-e]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| ('a'..='e').contains(&c)), "{s}");
            let t = "x[0-1]+".generate(&mut rng);
            assert!(t.starts_with('x') && t.len() >= 2, "{t}");
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = (1u32..4).prop_flat_map(|n| Just(n).prop_map(|n| n * 10));
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!([10, 20, 30].contains(&v));
        }
    }
}
