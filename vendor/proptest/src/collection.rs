//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Lengths accepted by [`vec()`]: an exact size or a half-open/inclusive
/// range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            min: len,
            max_inclusive: len,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        Self {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty vec size range");
        Self {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Result of [`vec()`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let ranged = vec(0u32..5, 1..7);
        let fixed = vec(0u32..5, 4usize);
        for _ in 0..100 {
            assert!((1..7).contains(&ranged.generate(&mut rng).len()));
            assert_eq!(fixed.generate(&mut rng).len(), 4);
        }
    }
}
