//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the real `proptest`
//! is unavailable. This crate keeps the same test-side syntax —
//! `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {...} }`,
//! `prop_assert!`/`prop_assert_eq!`, range/tuple/`Just`/`vec`/regex-string
//! strategies, `prop_map`/`prop_flat_map` — over a much simpler engine:
//! cases are generated from a deterministic per-test seed and failures
//! panic immediately with the case index (no shrinking). Determinism
//! makes failures reproducible without the `.proptest-regressions`
//! machinery, which this stand-in ignores.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy};

/// Runner configuration (`cases` only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property; produced by `prop_assert!`-family macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

/// Drives one property test: `config.cases` deterministic cases, panic
/// on the first failure (no shrinking).
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name gives each test its own seed stream;
    // the per-case offset keeps cases independent yet reproducible.
    let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        name_hash ^= u64::from(*b);
        name_hash = name_hash.wrapping_mul(0x1000_0000_01b3);
    }
    for case_idx in 0..config.cases {
        let seed = name_hash.wrapping_add(u64::from(case_idx));
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest case {case_idx}/{} failed for `{name}` (seed {seed}): {}",
                config.cases, e.message
            );
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection::vec;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, TestCaseError,
    };
}

/// Declares property tests. Supports the forms this workspace uses:
/// an optional `#![proptest_config(...)]` header followed by test
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_proptest(&config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds((a, b) in (0u32..10, 1.5f64..2.5), s in "[a-c]{2,4}") {
            prop_assert!(a < 10);
            prop_assert!((1.5..2.5).contains(&b));
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn flat_map_sees_upstream_value(v in (1usize..5).prop_flat_map(|n| vec(Just(n), n))) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x == v.len()));
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            crate::run_proptest(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
                Err(TestCaseError::fail("boom"))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("always_fails") && msg.contains("boom"),
            "{msg}"
        );
    }
}
