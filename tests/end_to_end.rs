//! Cross-crate integration: generator → matrices → estimators → metrics,
//! and simulator → pipeline → ranking, through the `socsense` facade.

use socsense::apollo::{Apollo, ApolloConfig};
use socsense::baselines::{all_finders, EmExtFinder, EmIndependent, FactFinder};
use socsense::core::{bound_for_data, BoundMethod, ClaimData, EmConfig, EmExt};
use socsense::eval::Confusion;
use socsense::graph::{build_matrices, FollowerGraph};
use socsense::synth::{empirical_theta, GeneratorConfig, IntInterval, SyntheticDataset};
use socsense::twitter::{ScenarioConfig, TruthValue, TwitterDataset};

#[test]
fn synthetic_world_round_trips_through_every_layer() {
    let config = GeneratorConfig::paper_defaults();
    let ds = SyntheticDataset::generate(&config, 11).unwrap();

    // Claim log rebuilt through the graph layer matches the dataset's own
    // matrices exactly.
    let (sc, d) = build_matrices(config.n, config.m, &ds.claims, &ds.graph);
    assert_eq!(&sc, ds.data.sc());
    assert_eq!(&d, ds.data.d());
    let rebuilt = ClaimData::new(sc, d).unwrap();

    // Estimator runs on the rebuilt data and beats coin-flipping.
    let fit = EmExt::new(EmConfig::default()).fit(&rebuilt).unwrap();
    let labels: Vec<bool> = fit.posterior.iter().map(|&p| p > 0.5).collect();
    let c = Confusion::from_labels(&labels, &ds.truth);
    assert!(c.accuracy() > 0.5, "accuracy {}", c.accuracy());

    // And the accuracy respects the fundamental bound (with slack for the
    // bound's own estimation noise over one run).
    let theta = empirical_theta(&ds);
    let bound = bound_for_data(&ds.data, &theta, &BoundMethod::Exact).unwrap();
    assert!(
        c.accuracy() <= bound.optimal_accuracy() + 0.1,
        "accuracy {} above optimal {}",
        c.accuracy(),
        bound.optimal_accuracy()
    );
}

#[test]
fn em_ext_dominates_em_when_dependencies_are_heavy() {
    // τ = 1: every non-root source echoes a single hub. Averaged over
    // seeds, dependency-aware estimation must not lose to the
    // independence assumption.
    let mut config = GeneratorConfig::estimator_defaults();
    config.tau = IntInterval::fixed(1);
    let reps = 12;
    let (mut ext, mut indep) = (0.0, 0.0);
    for seed in 0..reps {
        let ds = SyntheticDataset::generate(&config, seed).unwrap();
        let acc = |labels: Vec<bool>| Confusion::from_labels(&labels, &ds.truth).accuracy();
        ext += acc(EmExtFinder::default().classify(&ds.data).unwrap());
        indep += acc(EmIndependent::default().classify(&ds.data).unwrap());
    }
    assert!(
        ext > indep,
        "EM-Ext mean {:.3} should beat EM {:.3} under heavy dependency",
        ext / reps as f64,
        indep / reps as f64
    );
}

#[test]
fn twitter_campaign_flows_through_apollo_for_all_algorithms() {
    let ds = TwitterDataset::simulate(&ScenarioConfig::kirkuk().scaled(0.03), 5).unwrap();
    let apollo = Apollo::new(ApolloConfig {
        top_k: 20,
        ..ApolloConfig::default()
    });
    for finder in all_finders() {
        let out = apollo.run(&ds, finder.as_ref()).unwrap();
        assert_eq!(out.algorithm, finder.name());
        assert!(!out.ranked.is_empty(), "{} ranked nothing", finder.name());
        let acc = out.top_k_accuracy(20);
        assert!((0.0..=1.0).contains(&acc));
        // Ranked scores are non-increasing and supports are consistent
        // with the claim matrix.
        for w in out.ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for r in &out.ranked {
            assert_eq!(r.support, out.claim_data.sc().col_nnz(r.assertion));
        }
    }
}

#[test]
fn retweet_cascades_become_dependent_claims() {
    let ds = TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(0.03), 9).unwrap();
    let data = ds.claim_data();
    let retweets = ds.tweets.iter().filter(|t| t.retweet_of.is_some()).count();
    assert!(retweets > 0, "scenario produced no cascades");
    // Dependent claims in the matrix correspond to real cascade events:
    // at least half the retweets must surface as dependent cells (some
    // collapse when a source both originated and retweeted).
    assert!(
        data.dependent_claim_count() * 2 >= retweets,
        "{} dependent claims for {} retweets",
        data.dependent_claim_count(),
        retweets
    );
}

#[test]
fn top_k_agrees_with_pipeline_ranking() {
    let ds = TwitterDataset::simulate(&ScenarioConfig::superbug().scaled(0.02), 3).unwrap();
    let data = ds.claim_data();
    let finder = EmExtFinder::default();
    let direct = finder.top_k(&data, 10).unwrap();
    let piped = Apollo::new(ApolloConfig {
        top_k: 10,
        ..ApolloConfig::default()
    })
    .run(&ds, &finder)
    .unwrap();
    let piped_ids: Vec<u32> = piped.ranked.iter().map(|r| r.assertion).collect();
    assert_eq!(direct, piped_ids);
}

#[test]
fn opinions_never_count_as_true() {
    let mut cfg = ScenarioConfig::la_marathon().scaled(0.03);
    cfg.opinion_frac = 1.0; // a world of pure opinion
    let ds = TwitterDataset::simulate(&cfg, 1).unwrap();
    for j in 0..ds.assertion_count() {
        assert_eq!(ds.truth_value(j), TruthValue::Opinion);
    }
    let out = Apollo::new(ApolloConfig::default())
        .run(&ds, &EmExtFinder::default())
        .unwrap();
    assert_eq!(out.top_k_accuracy(50), 0.0);
}

#[test]
fn follower_graph_feeds_dependency_construction() {
    // A hub tweets first; every follower who repeats is dependent.
    let mut g = FollowerGraph::new(5);
    for f in 1..5 {
        g.add_follow(f, 0);
    }
    let claims: Vec<socsense::graph::TimedClaim> = (0..5)
        .map(|s| socsense::graph::TimedClaim::new(s, 0, s as u64))
        .collect();
    let data = ClaimData::from_claims(5, 1, &claims, &g);
    assert!(!data.dependent(0, 0));
    for f in 1..5 {
        assert!(data.dependent(f, 0), "follower {f}");
    }
    assert_eq!(data.dependent_claim_count(), 4);
}

#[test]
fn em_ext_posteriors_are_roughly_calibrated() {
    use socsense::eval::CalibrationCurve;
    // Pool posteriors across repetitions for a stable reliability diagram.
    let config = GeneratorConfig::estimator_defaults();
    let mut posteriors = Vec::new();
    let mut truth = Vec::new();
    for seed in 0..10u64 {
        let ds = SyntheticDataset::generate(&config, seed).unwrap();
        let scores = EmExtFinder::default().scores(&ds.data).unwrap();
        posteriors.extend(scores);
        truth.extend(ds.truth.iter().copied());
    }
    let curve = CalibrationCurve::from_posteriors(&posteriors, &truth, 10);
    let ece = curve.expected_calibration_error();
    // EM posteriors are overconfident (the model treats its θ̂ as exact),
    // but must stay far from pathological mis-calibration.
    assert!(ece < 0.35, "expected calibration error {ece:.3}");
    // Monotonicity: higher-prediction bins have (weakly) higher truth
    // rates, allowing small-sample noise in adjacent bins.
    let rates: Vec<f64> = curve.bins.iter().map(|b| b.fraction_true).collect();
    let first = rates.first().copied().unwrap_or(0.0);
    let last = rates.last().copied().unwrap_or(1.0);
    assert!(
        last > first,
        "truth rate should rise with prediction: {rates:?}"
    );
}
