//! Every stochastic component must be exactly reproducible per seed:
//! generators, simulators, samplers, estimators, and the experiment
//! harness. Reproducibility is what makes EXPERIMENTS.md auditable.

use socsense::baselines::all_finders;
use socsense::core::{gibbs_bound, EmConfig, EmExt, GibbsConfig, InitStrategy};
use socsense::eval::run_repeated;
use socsense::synth::{GeneratorConfig, SyntheticDataset};
use socsense::twitter::{ScenarioConfig, TwitterDataset};

#[test]
fn synthetic_generation_is_bit_identical_per_seed() {
    let cfg = GeneratorConfig::paper_defaults();
    let a = SyntheticDataset::generate(&cfg, 99).unwrap();
    let b = SyntheticDataset::generate(&cfg, 99).unwrap();
    assert_eq!(a.claims, b.claims);
    assert_eq!(a.truth, b.truth);
    assert_eq!(a.data, b.data);
    assert_eq!(a.profiles, b.profiles);
}

#[test]
fn twitter_simulation_is_bit_identical_per_seed() {
    let cfg = ScenarioConfig::superbug().scaled(0.02);
    let a = TwitterDataset::simulate(&cfg, 7).unwrap();
    let b = TwitterDataset::simulate(&cfg, 7).unwrap();
    assert_eq!(a.tweets, b.tweets);
    assert_eq!(a.truth, b.truth);
    assert_eq!(a.graph, b.graph);
}

#[test]
fn all_fact_finders_are_deterministic() {
    let ds = SyntheticDataset::generate(&GeneratorConfig::paper_defaults(), 3).unwrap();
    for finder in all_finders() {
        let s1 = finder.scores(&ds.data).unwrap();
        let s2 = finder.scores(&ds.data).unwrap();
        assert_eq!(s1, s2, "{} is nondeterministic", finder.name());
        let r1 = finder.ranking_scores(&ds.data).unwrap();
        let r2 = finder.ranking_scores(&ds.data).unwrap();
        assert_eq!(r1, r2, "{} ranking is nondeterministic", finder.name());
    }
}

#[test]
fn em_random_restarts_are_seed_stable() {
    let ds = SyntheticDataset::generate(&GeneratorConfig::paper_defaults(), 5).unwrap();
    let cfg = EmConfig {
        init: InitStrategy::Random { seed: 77 },
        restarts: 2,
        seed: 13,
        ..EmConfig::default()
    };
    let a = EmExt::new(cfg).fit(&ds.data).unwrap();
    let b = EmExt::new(cfg).fit(&ds.data).unwrap();
    assert_eq!(a.posterior, b.posterior);
    assert_eq!(a.theta, b.theta);
    assert_eq!(a.log_likelihood, b.log_likelihood);
}

#[test]
fn gibbs_chain_is_seed_stable_and_seed_sensitive() {
    let probs: Vec<(f64, f64)> = (0..40)
        .map(|i| (0.3 + 0.01 * (i % 20) as f64, 0.25 + 0.005 * (i % 10) as f64))
        .collect();
    let cfg = GibbsConfig {
        seed: 21,
        ..GibbsConfig::default()
    };
    let a = gibbs_bound(&probs, 0.5, &cfg).unwrap();
    let b = gibbs_bound(&probs, 0.5, &cfg).unwrap();
    assert_eq!(a.result, b.result);
    let other = gibbs_bound(
        &probs,
        0.5,
        &GibbsConfig {
            seed: 22,
            ..GibbsConfig::default()
        },
    )
    .unwrap();
    assert_ne!(a.result, other.result, "different seeds should differ");
}

#[test]
fn parallel_runner_matches_sequential_semantics() {
    // The runner hands seed base + r to repetition r regardless of thread
    // interleaving, so a pure function of the seed gives identical output.
    let f = |seed: u64| {
        let ds = SyntheticDataset::generate(&GeneratorConfig::paper_defaults(), seed).unwrap();
        ds.claims.len()
    };
    let par = run_repeated(6, 40, f);
    let seq: Vec<usize> = (0..6).map(|r| f(40 + r as u64)).collect();
    assert_eq!(par, seq);
}
