//! Qualitative shape checks against the paper's reported results, run at
//! reduced budgets so the suite stays fast. The full-budget regeneration
//! lives in the `repro` binary and `EXPERIMENTS.md`.

use socsense::core::GibbsConfig;
use socsense::eval::experiments::{bound_figures, estimator_figures, fig11, fig6, table1, Budget};

fn test_budget() -> Budget {
    let mut b = Budget::fast();
    b.bound_reps = 4;
    b.estimator_reps = 8;
    b.bound_assertions = 8;
    b.gibbs = GibbsConfig {
        min_samples: 200,
        max_samples: 600,
        ..GibbsConfig::default()
    };
    b.twitter_scale = 0.03;
    b
}

/// Table I: the recomputed bound equals the paper's 0.26980433.
#[test]
fn table1_reproduces_exactly() {
    let t = table1::run();
    assert!((t.bound.error - 0.26980433).abs() < 1e-8);
}

/// Fig. 3's headline: the Gibbs approximation tracks the exact bound
/// closely at every n (the paper's max gap is ~0.006–0.013).
#[test]
fn fig3_approx_tracks_exact() {
    let fig = bound_figures::fig3(&test_budget());
    let exact = &fig.series("exact bound").unwrap().y;
    let approx = &fig.series("approx bound").unwrap().y;
    for i in 0..fig.x.len() {
        assert!(
            (exact[i] - approx[i]).abs() < 0.05,
            "n = {}: exact {:.4} vs approx {:.4}",
            fig.x[i],
            exact[i],
            approx[i]
        );
    }
    // And the bound shrinks as sources are added (more data, less risk).
    assert!(
        exact.last().unwrap() < exact.first().unwrap(),
        "bound should fall with n: {exact:?}"
    );
}

/// Fig. 6's headline: exact time explodes with n, Gibbs stays flat.
#[test]
fn fig6_exact_time_explodes_gibbs_does_not() {
    let fig = fig6::fig6(&test_budget());
    let exact = &fig.series("exact (ms)").unwrap().y;
    let gibbs = &fig.series("gibbs (ms)").unwrap().y;
    // n = 25 exact must dwarf n = 5 exact by orders of magnitude.
    assert!(
        exact[4] > exact[0] * 50.0,
        "exact times {exact:?} did not explode"
    );
    // Gibbs stays within a small constant factor across the sweep.
    let gmax = gibbs.iter().cloned().fold(0.0, f64::max);
    let gmin = gibbs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        gmax / gmin < 50.0,
        "gibbs times {gibbs:?} should stay comparatively flat"
    );
}

/// Fig. 7's headline: accuracy improves with n and the Optimal curve
/// dominates every estimator.
#[test]
fn fig7_optimal_dominates_and_accuracy_grows() {
    let fig = estimator_figures::fig7(&test_budget());
    let opt = &fig.accuracy.series("Optimal").unwrap().y;
    for name in ["EM-Ext", "EM", "EM-Social"] {
        let y = &fig.accuracy.series(name).unwrap().y;
        for i in 0..y.len() {
            assert!(
                y[i] <= opt[i] + 0.08,
                "{name} at x={} is {:.3} vs optimal {:.3}",
                fig.accuracy.x[i],
                y[i],
                opt[i]
            );
        }
    }
    let ext = &fig.accuracy.series("EM-Ext").unwrap().y;
    let first_half: f64 = ext[..3].iter().sum::<f64>() / 3.0;
    let second_half: f64 = ext[4..].iter().sum::<f64>() / 3.0;
    assert!(
        second_half > first_half - 0.03,
        "EM-Ext accuracy should trend up with n: {ext:?}"
    );
}

/// Fig. 10's headline: EM-Social cannot benefit from more informative
/// dependent claims (it deletes them); EM-Ext can.
#[test]
fn fig10_em_social_is_flat_em_ext_improves() {
    let mut budget = test_budget();
    budget.estimator_reps = 16;
    let fig = estimator_figures::fig10(&budget);
    let slope = |y: &[f64]| {
        let half = y.len() / 2;
        y[half..].iter().sum::<f64>() / (y.len() - half) as f64
            - y[..half].iter().sum::<f64>() / half as f64
    };
    let ext_slope = slope(&fig.accuracy.series("EM-Ext").unwrap().y);
    let social_slope = slope(&fig.accuracy.series("EM-Social").unwrap().y);
    assert!(
        ext_slope > social_slope - 0.02,
        "EM-Ext slope {ext_slope:.3} should exceed EM-Social slope {social_slope:.3}"
    );
    // At this reduced repetition count the absolute slope carries ±0.02
    // of sampling noise; the full-budget run (EXPERIMENTS.md) shows a
    // clearly positive trend.
    assert!(
        ext_slope > -0.02,
        "EM-Ext should improve with dependent-claim informativeness, slope {ext_slope:.3}"
    );
}

/// Fig. 11's headline: the EM family beats the heuristics on average, and
/// EM-Ext beats plain EM and Voting.
#[test]
fn fig11_em_family_beats_heuristics() {
    // Three repetitions per scenario: at two, the top-10 grading is so
    // coarse (0.01 granularity on the five-scenario mean) that EM-Ext
    // and Voting can tie exactly; the third repetition separates them
    // while keeping the runtime in check.
    let fig = fig11::fig11(&test_budget(), 3);
    let mean = |label: &str| {
        let y = &fig.series(label).unwrap().y;
        y.iter().sum::<f64>() / y.len() as f64
    };
    assert!(
        mean("EM-Ext") > mean("Voting"),
        "EM-Ext {:.3} vs Voting {:.3}",
        mean("EM-Ext"),
        mean("Voting")
    );
    assert!(
        mean("EM-Ext") > mean("EM"),
        "EM-Ext {:.3} vs EM {:.3}",
        mean("EM-Ext"),
        mean("EM")
    );
    assert!(
        mean("EM-Ext") > mean("Sums"),
        "EM-Ext {:.3} vs Sums {:.3}",
        mean("EM-Ext"),
        mean("Sums")
    );
}
