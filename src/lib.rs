//! **socsense** — dependency-aware social sensing.
//!
//! A full reproduction of *"On Source Dependency Models for Reliable
//! Social Sensing: Algorithms and Fundamental Error Bounds"* (ICDCS
//! 2016): the source behaviour model, the EM-Ext dependency-aware
//! fact-finder, the fundamental (Bayes-risk) error bound with its exact
//! and Gibbs evaluations, six baseline fact-finders, the paper's
//! synthetic evaluation substrate, a simulated Twitter substrate standing
//! in for the paper's 2015 datasets, and an Apollo-style end-to-end
//! pipeline.
//!
//! This crate is a facade: it re-exports the public API of the workspace
//! crates so applications can depend on `socsense` alone.
//!
//! # Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `socsense-core` | model `θ`, [`core::EmExt`], exact & Gibbs bounds |
//! | [`baselines`] | `socsense-baselines` | EM, EM-Social, Voting, Sums, Average·Log, TruthFinder |
//! | [`synth`] | `socsense-synth` | Sec. V-A synthetic claim generator |
//! | [`twitter`] | `socsense-twitter` | simulated Twitter scenarios (Table III) |
//! | [`apollo`] | `socsense-apollo` | tweet clustering + ranking pipeline |
//! | [`discover`] | `socsense-discover` | dependency discovery: infer `D̂` from the claim log |
//! | [`serve`] | `socsense-serve` | long-lived query service over a streaming estimator |
//! | [`eval`] | `socsense-eval` | metrics, experiment runner, figure harnesses |
//! | [`graph`] | `socsense-graph` | follower graphs, dependency forests, `SC`/`D` construction |
//! | [`matrix`] | `socsense-matrix` | sparse binary matrices, log-probability helpers |
//!
//! # Quick start
//!
//! ```
//! use socsense::core::{classify, ClaimData, EmConfig, EmExt};
//! use socsense::graph::{FollowerGraph, TimedClaim};
//!
//! // Fig. 1 of the paper: John (0) follows Sally (1); Heather (2) is
//! // independent. John repeats Sally's claim -> dependent.
//! let mut g = FollowerGraph::new(3);
//! g.add_follow(0, 1);
//! let claims = vec![
//!     TimedClaim::new(1, 0, 1),
//!     TimedClaim::new(2, 1, 1),
//!     TimedClaim::new(0, 0, 2),
//!     TimedClaim::new(0, 1, 3),
//! ];
//! let data = ClaimData::from_claims(3, 2, &claims, &g);
//! let fit = EmExt::new(EmConfig::default()).fit(&data)?;
//! let labels = classify(&fit.posterior);
//! assert_eq!(labels.len(), 2);
//! # Ok::<(), socsense::core::SenseError>(())
//! ```

// detlint: contract = deterministic
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use socsense_apollo as apollo;
pub use socsense_baselines as baselines;
pub use socsense_core as core;
pub use socsense_discover as discover;
pub use socsense_eval as eval;
pub use socsense_graph as graph;
pub use socsense_matrix as matrix;
pub use socsense_serve as serve;
pub use socsense_synth as synth;
pub use socsense_twitter as twitter;
